package vm

import (
	"testing"

	"softbound/internal/ir"
)

// Compiled-engine structural tests: span construction invariants, the
// module-level compile cache, compile-tier fusion, and the control
// transfers that re-enter compiled code at dynamic resume points
// (setjmp/longjmp). Behavioral equivalence rides on the shared 3-way
// requireEngineAgreement helper (fast_test.go).

// TestCompileSpansPartitionCode holds the span table to its contract:
// spans start exactly at block entries and after calls, every
// instruction belongs to exactly one span, and each span's step weight
// is the sum of its components'.
func TestCompileSpansPartitionCode(t *testing.T) {
	for name, mod := range map[string]*ir.Module{
		"arith": arithLoopModule(),
		"fused": fusedAccessModule(8),
	} {
		prog := decodeModule(mod)
		cp := compileProgram(prog)
		for fn, cf := range cp.funcs {
			df := cf.df
			if len(cf.spanAt) != len(df.code) {
				t.Fatalf("%s/%s: span table length %d != code length %d",
					name, fn.Name, len(cf.spanAt), len(df.code))
			}
			covered := 0
			for i := 0; i < len(df.code); {
				sp := cf.spanAt[i]
				if sp == nil {
					t.Fatalf("%s/%s: no span at expected start %d", name, fn.Name, i)
				}
				var steps int64
				j := i
				for ; ; j++ {
					steps += int64(df.code[j].nsteps)
					if isSpanEnd(df.code[j].op) {
						break
					}
					if cf.spanAt[j+1] != nil && df.code[j].op != dCall {
						t.Fatalf("%s/%s: span start %d inside straight-line run from %d",
							name, fn.Name, j+1, i)
					}
				}
				if sp.steps != steps {
					t.Fatalf("%s/%s: span at %d has steps=%d, components sum to %d",
						name, fn.Name, i, sp.steps, steps)
				}
				covered += j - i + 1
				i = j + 1
			}
			if covered != len(df.code) {
				t.Fatalf("%s/%s: spans cover %d of %d instructions",
					name, fn.Name, covered, len(df.code))
			}
			for _, s := range df.blockStart {
				if cf.spanAt[s] == nil {
					t.Fatalf("%s/%s: block start %d is not a span start", name, fn.Name, s)
				}
			}
			for i := range df.code {
				if df.code[i].op == dCall && i+1 < len(df.code) && cf.spanAt[i+1] == nil {
					t.Fatalf("%s/%s: no span at post-call resume point %d", name, fn.Name, i+1)
				}
			}
		}
	}
}

// TestCompiledProgramSharedAcrossVMs pins the Module.Compiled cache: two
// compiled-engine VMs over one module share a single compile, and the
// compiled form layers on the same decoded program a fast-engine VM
// uses (one decode serves all engines).
func TestCompiledProgramSharedAcrossVMs(t *testing.T) {
	mod := arithLoopModule()
	v1, err := New(mod, Config{Interp: InterpCompiled})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(mod, Config{Interp: InterpCompiled})
	if err != nil {
		t.Fatal(err)
	}
	if v1.cprog == nil || v1.cprog != v2.cprog {
		t.Fatal("compiled program not shared via the module cache")
	}
	vf, err := New(mod, Config{Interp: InterpFast})
	if err != nil {
		t.Fatal(err)
	}
	if vf.prog != v1.prog {
		t.Fatal("fast and compiled engines do not share the decoded program")
	}
	if vf.cprog != nil {
		t.Fatal("fast engine built a compiled program it never runs")
	}
}

// TestCompiledCmpBrFusion pins the compile-tier Cmp+CondBr fusion: a
// span ending with a compare feeding its conditional branch carries both
// instructions' fixed statistics in one fused terminal (and the fused
// program still agrees with the other engines — the sweep tests cover
// the boundary behavior).
func TestCompiledCmpBrFusion(t *testing.T) {
	mod := arithLoopModule()
	prog := decodeModule(mod)
	cf := compileProgram(prog).funcs[mod.Lookup("main")]
	df := cf.df

	// Block 1 is exactly {Cmp, CondBr} in the decoded form.
	var found bool
	for _, s := range df.blockStart {
		i := int(s)
		if df.code[i].op == dCmp && i+1 < len(df.code) && df.code[i+1].op == dCondBr &&
			df.code[i+1].a.reg == df.code[i].dst {
			sp := cf.spanAt[i]
			if sp == nil {
				t.Fatalf("no span at cmp+condbr block start %d", i)
			}
			if sp.fixedInsts != 2 || sp.fixedSim != costALU+costCondBr {
				t.Fatalf("fused span stats: insts=%d sim=%d, want 2/%d",
					sp.fixedInsts, sp.fixedSim, costALU+costCondBr)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no cmp+condbr block found to fuse")
	}
}

// setjmpModule builds: main setjmps, calls a helper that longjmps back
// with 42, and returns the second setjmp result. Both the setjmp
// continuation (re-entry after a builtin call) and the longjmp target
// (checkpoint fip + 1) are dynamic resume points that must land on span
// boundaries in the compiled body.
func setjmpModule() *ir.Module {
	env := &ir.Global{Name: "env", Size: 16, Align: 8}

	helper := &ir.Func{Name: "helper", HasRet: true, RetClass: ir.ClassInt}
	h0 := helper.NewReg(ir.ClassInt)
	helper.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KCall, Callee: ir.FV("longjmp"),
			Dst: ir.NoReg, DstBase: ir.NoReg, DstBound: ir.NoReg,
			Args: []ir.Value{ir.GV("env", 0), ir.CI(42)}},
		{Kind: ir.KConst, Dst: h0, A: ir.CI(0)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(h0)},
	}}}

	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt) // setjmp result
	r1 := f.NewReg(ir.ClassInt) // scratch
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KCall, Callee: ir.FV("setjmp"), Dst: r0,
				DstBase: ir.NoReg, DstBound: ir.NoReg,
				Args: []ir.Value{ir.GV("env", 0)}},
			{Kind: ir.KCondBr, A: ir.R(r0), Target: 2, Else: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCall, Callee: ir.FV("helper"), Dst: r1,
				DstBase: ir.NoReg, DstBound: ir.NoReg},
			{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(100)},
			{Kind: ir.KRet, HasVal: true, A: ir.R(r0)},
		}},
	}
	mod := ir.NewModule("test")
	mod.AddFunc(f)
	mod.AddFunc(helper)
	mod.Globals = []*ir.Global{env}
	return mod
}

func TestEngineAgreementSetjmpLongjmp(t *testing.T) {
	res := requireEngineAgreement(t, setjmpModule(), Config{})
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.code != 142 {
		t.Fatalf("exit = %d, want 142 (longjmp value + 100)", res.code)
	}
}

// The step-limit sweep through a setjmp/longjmp weave drives budget
// exhaustion through builtin dispatch and both non-local resume points.
func TestEngineAgreementSetjmpStepLimitSweep(t *testing.T) {
	mod := setjmpModule()
	for limit := uint64(1); limit <= 40; limit++ {
		requireEngineAgreement(t, mod, Config{StepLimit: limit})
	}
}
