package vm_test

// Run-isolation tests: the benchmark harness executes many VMs
// concurrently, so VM instances must share no mutable state — neither
// with each other nor through the (read-only) linked module. These tests
// hold that invariant under -race.

import (
	"sync"
	"testing"

	"softbound/internal/driver"
	"softbound/internal/progs"
)

const isolationSrc = `
int buf[64];
int main() {
    int i;
    int *p = buf;
    long sum = 0;
    for (i = 0; i < 64; i = i + 1) { p[i] = i * 3; }
    for (i = 0; i < 64; i = i + 1) { sum = sum + p[i]; }
    return (int)(sum % 251);
}
`

// TestConcurrentVMsShareNoState compiles one module and executes many VMs
// over it at once: the module must behave as immutable shared input, and
// every run must produce identical results and statistics.
func TestConcurrentVMsShareNoState(t *testing.T) {
	cfg := driver.DefaultConfig(driver.ModeFull)
	mod, err := driver.Compile([]driver.Source{{Name: "iso.c", Text: isolationSrc}}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ref := driver.Execute(mod, cfg)
	if ref.Err != nil {
		t.Fatalf("reference run failed: %v", ref.Err)
	}

	const n = 8
	results := make([]*driver.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driver.Execute(mod, cfg)
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("run %d failed: %v", i, r.Err)
		}
		if r.ExitCode != ref.ExitCode {
			t.Errorf("run %d: exit %d, want %d", i, r.ExitCode, ref.ExitCode)
		}
		if r.Stats.SimInsts != ref.Stats.SimInsts || r.Stats.Checks != ref.Stats.Checks {
			t.Errorf("run %d: stats diverged: sim=%d checks=%d, want sim=%d checks=%d",
				i, r.Stats.SimInsts, r.Stats.Checks, ref.Stats.SimInsts, ref.Stats.Checks)
		}
	}
}

// TestConcurrentPipelinesIsolated exercises the whole compile+execute
// pipeline concurrently across different programs, modes, and metadata
// schemes — the access pattern of the parallel benchmark harness.
func TestConcurrentPipelinesIsolated(t *testing.T) {
	bench, ok := progs.Get("treeadd")
	if !ok {
		t.Fatal("treeadd benchmark missing")
	}
	src := bench.Source(3)

	var wg sync.WaitGroup
	for _, mode := range []driver.Mode{driver.ModeNone, driver.ModeStoreOnly, driver.ModeFull} {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(mode driver.Mode) {
				defer wg.Done()
				res, err := driver.RunSource(src, driver.DefaultConfig(mode))
				if err != nil {
					t.Errorf("%s: %v", mode, err)
					return
				}
				if res.Err != nil {
					t.Errorf("%s: run error: %v", mode, res.Err)
				}
			}(mode)
		}
	}
	wg.Wait()
}
