package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"softbound/internal/ir"
)

// infiniteLoop builds a module whose main spins forever.
func infiniteLoop() *ir.Module {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBr, Target: 0},
	}}}
	return buildModule(f)
}

func TestTrapClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code TrapCode
	}{
		{"spatial", &SpatialViolation{Kind: ir.CheckLoad}, TrapSpatial},
		{"temporal", &TemporalViolation{Kind: ir.CheckStore}, TrapTemporal},
		{"baseline", &BaselineViolation{Tool: "bounds", Msg: "oob"}, TrapBaseline},
		{"fault", &FaultError{Addr: 0x10}, TrapMemFault},
		{"runtime", &RuntimeError{Msg: "division by zero"}, TrapRuntime},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify(tc.err)
			var trap *Trap
			if !errors.As(got, &trap) {
				t.Fatalf("Classify(%v) = %v, not a *Trap", tc.err, got)
			}
			if trap.Code != tc.code {
				t.Fatalf("code = %q, want %q", trap.Code, tc.code)
			}
			if CodeOf(got) != tc.code {
				t.Fatalf("CodeOf = %q, want %q", CodeOf(got), tc.code)
			}
			// The original error must stay reachable through the chain.
			if !errors.Is(got, tc.err) && got.(*Trap).Cause != tc.err {
				t.Fatalf("cause %v lost from trap chain %v", tc.err, got)
			}
		})
	}
}

func TestTrapClassifyNilAndIdempotent(t *testing.T) {
	if Classify(nil) != nil {
		t.Fatal("Classify(nil) must be nil")
	}
	if CodeOf(nil) != "" {
		t.Fatal(`CodeOf(nil) must be ""`)
	}
	once := Classify(&RuntimeError{Msg: "x"})
	twice := Classify(once)
	if once != twice {
		t.Fatalf("Classify is not idempotent: %v vs %v", once, twice)
	}
}

// Typed errors must survive double-wrapping for callers using errors.As.
func TestTrapPreservesErrorsAs(t *testing.T) {
	sv := &SpatialViolation{Kind: ir.CheckStore, Ptr: 64}
	wrapped := Classify(sv)
	var got *SpatialViolation
	if !errors.As(wrapped, &got) || got != sv {
		t.Fatalf("errors.As lost *SpatialViolation through %v", wrapped)
	}
}

func TestStepLimitTrapCode(t *testing.T) {
	v, err := New(infiniteLoop(), Config{StepLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := v.Run()
	if CodeOf(runErr) != TrapStepLimit {
		t.Fatalf("runaway loop: got %v (code %q), want step-limit trap", runErr, CodeOf(runErr))
	}
}

func TestDeadlineTrap(t *testing.T) {
	v, err := New(infiniteLoop(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	limit := 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	start := time.Now()
	_, runErr := v.RunContext(ctx)
	elapsed := time.Since(start)
	if CodeOf(runErr) != TrapDeadline {
		t.Fatalf("hung program: got %v (code %q), want deadline trap", runErr, CodeOf(runErr))
	}
	if elapsed >= 2*limit {
		t.Fatalf("deadline fired after %v, want < 2×%v", elapsed, limit)
	}
}

func TestStackDepthTrap(t *testing.T) {
	// main calls itself forever: unbounded recursion.
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KCall, Callee: ir.FV("main"), Dst: 0, DstBase: ir.NoReg, DstBound: ir.NoReg},
		{Kind: ir.KRet, HasVal: true, A: ir.R(0)},
	}}}
	v, err := New(buildModule(f), Config{MaxStackDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := v.Run()
	if CodeOf(runErr) != TrapStackOverflow {
		t.Fatalf("unbounded recursion: got %v (code %q), want stack-overflow trap",
			runErr, CodeOf(runErr))
	}
}
