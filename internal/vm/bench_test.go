package vm

import (
	"testing"

	"softbound/internal/ir"
)

// Microbenchmarks for the interpreter core. Each sub-benchmark runs the
// same module on the fast (pre-decoded) and reference (per-step) engines
// so a single `go test -bench` invocation yields the A/B comparison; the
// reference engine is the pre-PR interpreter.

// benchConfig keeps the VM's memory segments tiny so interpretation —
// not segment allocation in New — dominates the measurement.
func benchConfig(kind InterpKind) Config {
	return Config{Interp: kind, HeapSize: 1 << 16, StackSize: 1 << 16}
}

func benchRun(b *testing.B, mod *ir.Module, kind InterpKind) {
	b.Helper()
	b.ReportAllocs()
	// Warm the module-level decode cache so the fast engine's one-time
	// translation cost is not billed to the first iteration.
	if v, err := New(mod, benchConfig(kind)); err != nil {
		b.Fatal(err)
	} else if _, err := v.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := New(mod, benchConfig(kind))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBoth(b *testing.B, mod *ir.Module) {
	b.Run("compiled", func(b *testing.B) { benchRun(b, mod, InterpCompiled) })
	b.Run("fast", func(b *testing.B) { benchRun(b, mod, InterpFast) })
	b.Run("ref", func(b *testing.B) { benchRun(b, mod, InterpRef) })
}

// benchLoopModule is the instrumented hot-loop shape: masked index, a
// fused GEP+Check+Load and GEP+Check+Store per iteration, plus loop ALU.
func benchLoopModule(iters int64) *ir.Module {
	g := &ir.Global{Name: "g", Size: 64, Align: 8}
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt) // i
	r1 := f.NewReg(ir.ClassInt) // sum
	rt := f.NewReg(ir.ClassInt) // i & 7
	rp := f.NewReg(ir.ClassPtr) // p
	rv := f.NewReg(ir.ClassInt) // loaded value
	rc := f.NewReg(ir.ClassInt) // condition
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: r1, A: ir.CI(0)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: rc, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(iters)},
			{Kind: ir.KCondBr, A: ir.R(rc), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: rt, Op: ir.OpAnd, A: ir.R(r0), B: ir.CI(7)},
			{Kind: ir.KGEP, Dst: rp, A: ir.GV("g", 0), B: ir.R(rt), Size: 8},
			{Kind: ir.KCheck, CheckK: ir.CheckLoad, A: ir.R(rp),
				Base: ir.GV("g", 0), Bound: ir.GV("g", 64), AccessSize: 8},
			{Kind: ir.KLoad, Dst: rv, A: ir.R(rp), Mem: ir.MemI64},
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(rv)},
			{Kind: ir.KBin, Dst: rv, Op: ir.OpAdd, A: ir.R(rv), B: ir.CI(1)},
			{Kind: ir.KGEP, Dst: rp, A: ir.GV("g", 0), B: ir.R(rt), Size: 8},
			{Kind: ir.KCheck, CheckK: ir.CheckStore, A: ir.R(rp),
				Base: ir.GV("g", 0), Bound: ir.GV("g", 64), AccessSize: 8},
			{Kind: ir.KStore, A: ir.R(rp), B: ir.R(rv), Mem: ir.MemI64},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAnd, A: ir.R(r1), B: ir.CI(0xFF)},
			{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
		}},
	}
	return buildModule(f, g)
}

// callLoopModule calls a two-argument leaf function once per iteration.
func callLoopModule(iters int64) *ir.Module {
	leaf := &ir.Func{Name: "leaf", HasRet: true, RetClass: ir.ClassInt, OrigParams: 2}
	a := leaf.NewReg(ir.ClassInt)
	bb := leaf.NewReg(ir.ClassInt)
	s := leaf.NewReg(ir.ClassInt)
	leaf.ParamRegs = []ir.Reg{a, bb}
	leaf.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBin, Dst: s, Op: ir.OpAdd, A: ir.R(a), B: ir.R(bb)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(s)},
	}}}

	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt)
	r1 := f.NewReg(ir.ClassInt)
	r2 := f.NewReg(ir.ClassInt)
	rc := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: r1, A: ir.CI(0)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: rc, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(iters)},
			{Kind: ir.KCondBr, A: ir.R(rc), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCall, Callee: ir.FV("leaf"), Dst: r2,
				DstBase: ir.NoReg, DstBound: ir.NoReg,
				Args: []ir.Value{ir.R(r0), ir.CI(7)}},
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r2)},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAnd, A: ir.R(r1), B: ir.CI(0xFF)},
			{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
		}},
	}
	mod := ir.NewModule("bench")
	mod.AddFunc(f)
	mod.AddFunc(leaf)
	return mod
}

// indirectCallLoopModule calls a transformed two-argument leaf through a
// function-pointer register once per iteration, pushing a shadow-window
// slot for its pointer argument — the full ABI cost of a metadata-
// carrying indirect call (dynamic callee resolution, window push/fill,
// positional pop).
func indirectCallLoopModule(iters int64) *ir.Module {
	leaf := &ir.Func{Name: "leaf", HasRet: true, RetClass: ir.ClassInt,
		OrigParams: 2, Transformed: true,
		Params: []ir.Param{{Class: ir.ClassInt}, {Class: ir.ClassPtr, IsPtr: true}}}
	a := leaf.NewReg(ir.ClassInt)
	p := leaf.NewReg(ir.ClassPtr)
	pb := leaf.NewReg(ir.ClassPtr)
	pe := leaf.NewReg(ir.ClassPtr)
	s := leaf.NewReg(ir.ClassInt)
	leaf.ParamRegs = []ir.Reg{a, p, pb, pe}
	leaf.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBin, Dst: s, Op: ir.OpSub, A: ir.R(pe), B: ir.R(pb)},
		{Kind: ir.KBin, Dst: s, Op: ir.OpAdd, A: ir.R(s), B: ir.R(a)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(s)},
	}}}

	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt)
	r1 := f.NewReg(ir.ClassInt)
	r2 := f.NewReg(ir.ClassInt)
	rc := f.NewReg(ir.ClassInt)
	rp := f.NewReg(ir.ClassPtr)
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: r1, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: rp, A: ir.FV("leaf")},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: rc, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(iters)},
			{Kind: ir.KCondBr, A: ir.R(rc), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCall, Callee: ir.R(rp), Dst: r2,
				DstBase: ir.NoReg, DstBound: ir.NoReg,
				Args: []ir.Value{ir.R(r0), ir.CI(0x100)},
				Shadow: []ir.ShadowSlot{
					{Arg: 1, Base: ir.CI(0x100), Bound: ir.CI(0x140)},
				}},
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r2)},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAnd, A: ir.R(r1), B: ir.CI(0xFF)},
			{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
		}},
	}
	mod := ir.NewModule("bench")
	mod.AddFunc(f)
	mod.AddFunc(leaf)
	return mod
}

// metaLoadModule performs one metadata load per iteration. With
// stride == 0 every load probes the same shadow slot (cache hit); with a
// nonzero stride over a window wider than the lookup cache every probe
// misses.
func metaLoadModule(iters, stride, window int64) *ir.Module {
	g := &ir.Global{Name: "g", Size: window + 8, Align: 8}
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt) // i
	rt := f.NewReg(ir.ClassInt) // byte offset
	rp := f.NewReg(ir.ClassPtr) // probed address
	rb := f.NewReg(ir.ClassInt)
	re := f.NewReg(ir.ClassInt)
	rc := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KMetaStore, A: ir.GV("g", 0), SrcBase: ir.CI(16), SrcBound: ir.CI(32)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: rc, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(iters)},
			{Kind: ir.KCondBr, A: ir.R(rc), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: rt, Op: ir.OpMul, A: ir.R(r0), B: ir.CI(stride)},
			{Kind: ir.KBin, Dst: rt, Op: ir.OpAnd, A: ir.R(rt), B: ir.CI(window - 1)},
			{Kind: ir.KGEP, Dst: rp, A: ir.GV("g", 0), B: ir.R(rt), Size: 1},
			{Kind: ir.KMetaLoad, A: ir.R(rp), DstBaseR: rb, DstBndR: re},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KRet, HasVal: true, A: ir.R(rb)},
		}},
	}
	return buildModule(f, g)
}

func BenchmarkInterpLoop(b *testing.B) { benchBoth(b, benchLoopModule(1<<16)) }
func BenchmarkCallReturn(b *testing.B) { benchBoth(b, callLoopModule(1<<16)) }

// BenchmarkIndirectCall tracks the shadow-stack call ABI overhead in
// BENCH.json: one metadata-carrying indirect call per iteration.
func BenchmarkIndirectCall(b *testing.B) { benchBoth(b, indirectCallLoopModule(1<<16)) }
func BenchmarkMetaLoadHit(b *testing.B)  { benchBoth(b, metaLoadModule(1<<16, 0, 8192)) }
func BenchmarkMetaLoadMiss(b *testing.B) {
	// Stride of 8 bytes over an 8 KiB window touches 1024 distinct shadow
	// slots against 256 cache slots: every probe evicts before reuse.
	benchBoth(b, metaLoadModule(1<<16, 8, 8192))
}

// The steady-state call path must not allocate on either engine that
// claims zero-allocation dispatch: frames, registers, and builtin
// argument buffers are all reused (the compiled engine adds only one
// constant per-run context). Measuring two run lengths and taking the
// slope isolates per-call allocations from the fixed VM construction
// cost.
func TestSteadyStateCallPathAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is slow under -short")
	}
	const extra = 4096
	for _, kind := range []InterpKind{InterpFast, InterpCompiled} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			measure := func(iters int64) float64 {
				mod := callLoopModule(iters)
				// Prime the decode/compile caches outside the measured region.
				if v, err := New(mod, benchConfig(kind)); err != nil {
					t.Fatal(err)
				} else if _, err := v.Run(); err != nil {
					t.Fatal(err)
				}
				return testing.AllocsPerRun(10, func() {
					v, err := New(mod, benchConfig(kind))
					if err != nil {
						t.Fatal(err)
					}
					if _, err := v.Run(); err != nil {
						t.Fatal(err)
					}
				})
			}
			base := measure(16)
			long := measure(16 + extra)
			perCall := (long - base) / extra
			if perCall > 0.01 {
				t.Fatalf("steady-state call path allocates: %.4f allocs/call (base=%.1f long=%.1f)",
					perCall, base, long)
			}
		})
	}
}
