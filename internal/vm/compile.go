package vm

import (
	"fmt"

	"softbound/internal/ir"
	"softbound/internal/meta"
)

// This file implements the compiled engine (InterpCompiled): a threaded-
// code tier above the fast interpreter. Each decoded function body
// ([]dinst, decode.go — operands stay pre-resolved, nothing is decoded
// twice) is lowered once into chains of Go closures, one chain per
// *span*. A span is a maximal straight-line run of decoded instructions
// ending at a control transfer (branch, call, return, trap sentinel);
// every dynamic resume point — block entry, the instruction after a
// call, a longjmp target — is a span start, so the engine only ever
// enters code at span boundaries.
//
// Within a span there is no dispatch at all: every closure does its work
// and directly calls the next closure it captured at compile time. The
// step/deadline clock and the Insts/SimInsts counters are reconciled at
// span entry — the span's total step weight and its fixed statistics
// contributions are applied up front, and the rare fallible operation
// carries compile-time "undo" constants that subtract the unexecuted
// tail at its failure site, reproducing the fast engine's per-component
// accounting bit for bit. When the remaining step budget cannot cover a
// whole span, the engine flushes and delegates the rest of the run to
// loopFast, whose per-instruction countdown (and stepLimited's partial
// execution of fused superinstructions) lands the step-limit trap at
// exactly the reference position.
//
// The call ABI (execCallFast, shadow windows), temporal checkAccess, and
// the trap taxonomy are shared verbatim with the fast engine, so the
// engine-differential equivalence contract carries over unchanged.
//
// Compiled programs capture only module-static data (register numbers,
// immediates, decoded instruction pointers); all VM-specific state
// (checker hooks, metadata facility, lookaside cache, cost overrides) is
// read through the per-run context at execution time. The compiled form
// is therefore shareable across VMs and is cached on the *ir.Module
// (Module.Compiled) next to the decoded form, with the same singleflight
// contract — one compile serves the serve compile cache, the parallel
// bench harness, and the soak matrix.

// cop is one compiled operation. It receives the per-run context and the
// current frame's register file and returns the next span to enter
// (direct threading: branch targets are captured as span pointers, so
// the driver loop never consults the span table between branches), or
// nil when the straight line ends — either the active frame changed (a
// call or return ran) or a failure was recorded in c.err.
type cop func(c *cctx, regs []uint64) *cspan

// cctx is the per-run execution context threaded through every closure.
// One is allocated per loopCompiled invocation (a constant, not
// per-call, cost — the steady-state call path stays allocation-free).
type cctx struct {
	v   *VM
	st  *fastState
	f   *frame
	err error
}

// fail is the shared mid-span failure path: pin the faulting
// instruction, subtract the pre-added statistics the failure point never
// reached, and hand the wrapped error to the driver.
func (c *cctx) fail(fip int, d *dinst, undoInsts, undoSim uint64, err error) *cspan {
	c.f.fip = fip
	c.st.insts -= undoInsts
	c.st.sim -= undoSim
	c.err = wrapFastErr(c.f, d, err)
	return nil
}

// cspan is one compiled straight-line run. steps is the span's total
// step weight (sum of component nsteps); fixedInsts/fixedSim are the
// statistics contributions applied at span entry; fip is the flat index
// of the span's first instruction (where the clock flushes attribute
// traps when the span cannot be entered).
type cspan struct {
	steps      int64
	fixedInsts uint64
	fixedSim   uint64
	fip        int
	head       cop
}

// cfunc is a compiled function body: the decoded form it was lowered
// from plus the span table, indexed by flat instruction index (non-nil
// exactly at span starts).
type cfunc struct {
	df     *dfunc
	spanAt []*cspan
}

// cprogram is a compiled module.
type cprogram struct {
	funcs map[*ir.Func]*cfunc
}

// isSpanEnd reports whether op terminates a span (control leaves the
// straight line, or execution cannot continue past it).
func isSpanEnd(op dOp) bool {
	switch op {
	case dBr, dCondBr, dCall, dRet, dUnreachable, dFellOff, dBad:
		return true
	}
	return false
}

// compileProgram lowers a decoded program into its compiled form. It is
// pure with respect to the module, like decodeModule, so the result is
// shareable across VMs.
func compileProgram(dp *program) *cprogram {
	cp := &cprogram{funcs: make(map[*ir.Func]*cfunc, len(dp.funcs))}
	for fn, df := range dp.funcs {
		cp.funcs[fn] = compileFunc(df)
	}
	return cp
}

// compileFunc builds the span table for one decoded body. Span starts
// are block entries plus the instruction after every call (the dynamic
// resume points: frame entry, post-builtin and post-call continuation,
// longjmp's checkpoint+1, hijack re-entry at 0). Spans partition the
// code exactly: every block ends with a terminator or the dFellOff
// sentinel, and the instruction before any start is a call or a
// terminator, so no span straddles a start.
func compileFunc(df *dfunc) *cfunc {
	cf := &cfunc{df: df, spanAt: make([]*cspan, len(df.code))}
	if len(df.code) == 0 {
		return cf
	}
	start := make([]bool, len(df.code)+1)
	for _, s := range df.blockStart {
		start[s] = true
	}
	for i := range df.code {
		if df.code[i].op == dCall {
			start[i+1] = true
		}
	}
	// Two passes: allocate every span object first so branch compilation
	// can capture target spans directly (direct threading), then fill in
	// the closure chains.
	type spanRange struct{ start, end int }
	var spans []spanRange
	for i := 0; i < len(df.code); {
		end := i
		for !isSpanEnd(df.code[end].op) {
			end++
		}
		cf.spanAt[i] = &cspan{fip: i}
		spans = append(spans, spanRange{i, end})
		i = end + 1
	}
	for _, r := range spans {
		compileSpan(cf, r.start, r.end)
	}
	return cf
}

// compileSpan lowers code[start..end] (end = the span's control
// transfer) into a backward-composed closure chain filled into the
// pre-allocated span object: the terminal op compiles first, then each
// earlier op captures its successor and calls it directly.
// tailInsts/tailSim accumulate the fixed contributions of
// already-compiled (later) ops; each fallible op captures them as its
// undo constants.
func compileSpan(cf *cfunc, start, end int) {
	df := cf.df
	code := df.code
	sp := cf.spanAt[start]
	for j := start; j <= end; j++ {
		sp.steps += int64(code[j].nsteps)
	}

	var next cop
	j := end

	// Compile-tier fusions at the span terminal (profile-guided: see
	// DESIGN.md "Profile-guided fusion"). A compare feeding the span's
	// conditional branch collapses into one compare-and-branch closure
	// (the compare result is still written — later blocks may read it);
	// an induction add feeding the unconditional back edge collapses the
	// same way.
	if end > start && code[end].op == dCondBr &&
		code[end-1].op == dCmp && code[end].a.reg == code[end-1].dst {
		next = compileCmpBr(cf, &code[end-1], &code[end])
		sp.fixedInsts += 2
		sp.fixedSim += costALU + costCondBr
		j = end - 2
	} else if end > start && code[end].op == dBr {
		if op := compileArithBr(cf, &code[end-1], &code[end]); op != nil {
			next = op
			sp.fixedInsts += 2
			sp.fixedSim += costALU + costBr
			j = end - 2
		}
	}

	for ; j >= start; j-- {
		if j > start {
			if op, pairInsts, pairSim := compilePair(df, j-1, j, next); op != nil {
				next = op
				sp.fixedInsts += pairInsts
				sp.fixedSim += pairSim
				j-- // the pair consumed two instructions
				continue
			}
		}
		op, ownInsts, ownSim := compileInst(cf, j, next, sp.fixedInsts, sp.fixedSim)
		next = op
		sp.fixedInsts += ownInsts
		sp.fixedSim += ownSim
	}
	sp.head = next
}

// compileCmpBr fuses dCmp + dCondBr into one terminal closure. The
// predicates that close loops (signed/unsigned less-than, equality) get
// fully inlined compare-and-branch bodies with no kernel call — the
// captured-kernel indirection showed up as its own frame on the hottest
// edge of every benchmark loop. The rest go through the kernel.
func compileCmpBr(cf *cfunc, cmp, br *dinst) cop {
	dst := cmp.dst
	t, e := cf.spanAt[br.target], cf.spanAt[br.elseT]
	in := cmp.src
	if cmp.a.reg >= 0 && cmp.b.reg < 0 {
		a, imm := cmp.a.reg, cmp.b.imm
		switch {
		case in.Pred == ir.PredLT && in.Signed:
			si := int64(imm)
			return func(c *cctx, regs []uint64) *cspan {
				if int64(regs[a]) < si {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		case in.Pred == ir.PredLT:
			return func(c *cctx, regs []uint64) *cspan {
				if regs[a] < imm {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		case in.Pred == ir.PredEQ:
			return func(c *cctx, regs []uint64) *cspan {
				if regs[a] == imm {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		case in.Pred == ir.PredNE:
			return func(c *cctx, regs []uint64) *cspan {
				if regs[a] != imm {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		}
	}
	if cmp.a.reg >= 0 && cmp.b.reg >= 0 {
		a, b := cmp.a.reg, cmp.b.reg
		switch {
		case in.Pred == ir.PredLT && in.Signed:
			return func(c *cctx, regs []uint64) *cspan {
				if int64(regs[a]) < int64(regs[b]) {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		case in.Pred == ir.PredLT:
			return func(c *cctx, regs []uint64) *cspan {
				if regs[a] < regs[b] {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		case in.Pred == ir.PredEQ:
			return func(c *cctx, regs []uint64) *cspan {
				if regs[a] == regs[b] {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		case in.Pred == ir.PredNE:
			return func(c *cctx, regs []uint64) *cspan {
				if regs[a] != regs[b] {
					regs[dst] = 1
					return t
				}
				regs[dst] = 0
				return e
			}
		}
	}
	k := cmpKernel(in)
	if k == nil {
		k = func(a, b uint64) uint64 { return cmpOp(a, b, in) }
	}
	if cmp.a.reg >= 0 && cmp.b.reg >= 0 {
		a, b := cmp.a.reg, cmp.b.reg
		return func(c *cctx, regs []uint64) *cspan {
			r := k(regs[a], regs[b])
			regs[dst] = r
			if r != 0 {
				return t
			}
			return e
		}
	}
	if cmp.a.reg >= 0 {
		a, imm := cmp.a.reg, cmp.b.imm
		return func(c *cctx, regs []uint64) *cspan {
			r := k(regs[a], imm)
			regs[dst] = r
			if r != 0 {
				return t
			}
			return e
		}
	}
	av, bv := cmp.a, cmp.b
	return func(c *cctx, regs []uint64) *cspan {
		r := k(av.get(regs), bv.get(regs))
		regs[dst] = r
		if r != 0 {
			return t
		}
		return e
	}
}

// compileArithBr fuses the loop back-edge shape — a full-width induction
// add feeding the span's unconditional branch — into one closure.
// Returns nil when the preceding instruction is not that shape.
func compileArithBr(cf *cfunc, ar, br *dinst) cop {
	switch ar.op {
	case dAdd:
	case dBin:
		in := ar.src
		if in.Op != ir.OpAdd || (in.IntWidth != 0 && in.IntWidth < 64) {
			return nil
		}
	default:
		return nil
	}
	dst := ar.dst
	t := cf.spanAt[br.target]
	if ar.a.reg >= 0 && ar.b.reg < 0 {
		a, imm := ar.a.reg, ar.b.imm
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = regs[a] + imm
			return t
		}
	}
	if ar.a.reg >= 0 && ar.b.reg >= 0 {
		a, b := ar.a.reg, ar.b.reg
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = regs[a] + regs[b]
			return t
		}
	}
	return nil
}

// compilePair lowers profile-guided two-instruction fusions inside a
// span: a GEP feeding a metadata load (the shadow-space probe pattern,
// where the address arithmetic is immediately consumed by the table
// lookup), and a full-width multiply feeding an immediate mask (the
// strided index wrapped into a power-of-two window). Returns a nil cop
// when no fusion applies.
func compilePair(df *dfunc, i, j int, next cop) (cop, uint64, uint64) {
	code := df.code
	if op := compileScaleMask(&code[i], &code[j], next); op != nil {
		return op, 2, 2 * costALU
	}
	g, m := &code[i], &code[j]
	if g.op != dGEP || m.op != dMetaLoad || g.dst < 0 || m.a.reg != g.dst {
		return nil, 0, 0
	}
	gdst, size, off := g.dst, uint64(g.size), uint64(g.off)
	ga, gb := g.a, g.b
	dst, dst2, dst3, dst4 := m.dst, m.dst2, m.dst3, m.dst4
	temporal := dst3 != ir.NoReg
	return func(c *cctx, regs []uint64) *cspan {
		v := c.v
		addr := ga.get(regs) + gb.get(regs)*size + off
		regs[gdst] = addr
		var e meta.Entry
		if v.mcache != nil {
			e = v.mcache.Lookup(addr)
		} else {
			e = v.fac.Lookup(addr)
		}
		regs[dst] = e.Base
		regs[dst2] = e.Bound
		if temporal {
			regs[dst3] = e.Key
			regs[dst4] = e.Lock
		}
		v.stats.MetaLoads++
		c.st.sim += v.lookupCost
		return next(c, regs)
	}, 2, costALU
}

// compileScaleMask fuses a full-width reg*imm multiply whose result is
// immediately masked by an immediate (the scaled-index-into-window
// shape). Both destinations are still written — the intermediate may be
// live past the pair.
func compileScaleMask(m, n *dinst, next cop) cop {
	if !isFullBin(m, ir.OpMul) || !isFullBin(n, ir.OpAnd) {
		return nil
	}
	if m.a.reg < 0 || m.b.reg >= 0 || n.b.reg >= 0 || n.a.reg != m.dst {
		return nil
	}
	d1, a, f := m.dst, m.a.reg, m.b.imm
	d2, mask := n.dst, n.b.imm
	return func(c *cctx, regs []uint64) *cspan {
		t := regs[a] * f
		regs[d1] = t
		regs[d2] = t & mask
		return next(c, regs)
	}
}

// isFullBin reports whether d computes op at full 64-bit width (either
// as a decoder-specialized arithmetic op or a dBin with identity wrap).
func isFullBin(d *dinst, op ir.Op) bool {
	switch {
	case d.op == dAdd:
		return op == ir.OpAdd
	case d.op == dSub:
		return op == ir.OpSub
	case d.op == dMul:
		return op == ir.OpMul
	case d.op != dBin:
		return false
	}
	in := d.src
	return in.Op == op && (in.IntWidth == 0 || in.IntWidth >= 64)
}

// cmpKernel returns a direct closure for an integer comparison
// predicate, or nil for the float predicates (generic cmpOp fallback).
// Bodies replicate cmpOp exactly.
func cmpKernel(in *ir.Inst) func(a, b uint64) uint64 {
	signed := in.Signed
	switch in.Pred {
	case ir.PredEQ:
		return func(a, b uint64) uint64 { return b2u(a == b) }
	case ir.PredNE:
		return func(a, b uint64) uint64 { return b2u(a != b) }
	case ir.PredLT:
		if signed {
			return func(a, b uint64) uint64 { return b2u(int64(a) < int64(b)) }
		}
		return func(a, b uint64) uint64 { return b2u(a < b) }
	case ir.PredLE:
		if signed {
			return func(a, b uint64) uint64 { return b2u(int64(a) <= int64(b)) }
		}
		return func(a, b uint64) uint64 { return b2u(a <= b) }
	case ir.PredGT:
		if signed {
			return func(a, b uint64) uint64 { return b2u(int64(a) > int64(b)) }
		}
		return func(a, b uint64) uint64 { return b2u(a > b) }
	case ir.PredGE:
		if signed {
			return func(a, b uint64) uint64 { return b2u(int64(a) >= int64(b)) }
		}
		return func(a, b uint64) uint64 { return b2u(a >= b) }
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// binKernel returns a direct closure for an infallible integer binary
// op, or nil when the op needs the generic path (div/rem can trap,
// floats are rare). Bodies replicate binOp + wrapInt exactly; wrapInt is
// small enough to inline into the closure.
func binKernel(in *ir.Inst) func(a, b uint64) uint64 {
	w, s := in.IntWidth, in.Signed
	switch in.Op {
	case ir.OpAdd:
		return func(a, b uint64) uint64 { return wrapInt(a+b, w, s) }
	case ir.OpSub:
		return func(a, b uint64) uint64 { return wrapInt(a-b, w, s) }
	case ir.OpMul:
		return func(a, b uint64) uint64 { return wrapInt(a*b, w, s) }
	case ir.OpAnd:
		return func(a, b uint64) uint64 { return wrapInt(a&b, w, s) }
	case ir.OpOr:
		return func(a, b uint64) uint64 { return wrapInt(a|b, w, s) }
	case ir.OpXor:
		return func(a, b uint64) uint64 { return wrapInt(a^b, w, s) }
	case ir.OpShl:
		return func(a, b uint64) uint64 { return wrapInt(a<<(b&63), w, s) }
	case ir.OpShr:
		if s {
			return func(a, b uint64) uint64 {
				return wrapInt(uint64(int64(a)>>(b&63)), w, s)
			}
		}
		width := w
		if width == 0 {
			width = 64
		}
		return func(a, b uint64) uint64 {
			if width < 64 {
				a &= (uint64(1) << uint(width)) - 1
			}
			return wrapInt(a>>(b&63), w, s)
		}
	}
	return nil
}

// compileInst lowers one decoded instruction into a closure, returning
// its fixed Insts/SimInsts contributions (pre-added at span entry).
// tailInsts/tailSim are the fixed contributions of the ops after it in
// the span — the amounts a failure here must subtract on top of its own
// unreached portion. The accounting mirrors fastexec.go case by case.
func compileInst(cf *cfunc, fip int, next cop, tailInsts, tailSim uint64) (cop, uint64, uint64) {
	df := cf.df
	code := df.code
	d := &code[fip]
	fname := df.fn.Name
	switch d.op {
	case dConst:
		dst, imm := d.dst, d.a.imm
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = imm
			return next(c, regs)
		}, 1, costALU

	case dMov:
		dst, src := d.dst, d.a.reg
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = regs[src]
			return next(c, regs)
		}, 1, costALU

	case dAdd:
		return compileAddOp(d, next), 1, costALU
	case dSub:
		return compileSubOp(d, next), 1, costALU
	case dMul:
		return compileMulOp(d, next), 1, costALU

	case dBin:
		if op := compileBinFull(d, next); op != nil {
			return op, 1, costALU
		}
		if k := binKernel(d.src); k != nil {
			return compileArith(d, next, k), 1, costALU
		}
		dst, av, bv, src := d.dst, d.a, d.b, d.src
		undoI, undoS := tailInsts, tailSim+costALU
		return func(c *cctx, regs []uint64) *cspan {
			r, err := binOp(av.get(regs), bv.get(regs), src, fname)
			if err != nil {
				return c.fail(fip, d, undoI, undoS, err)
			}
			regs[dst] = r
			return next(c, regs)
		}, 1, costALU

	case dUn:
		dst, av, src := d.dst, d.a, d.src
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = unOp(regs[dst], av.get(regs), src)
			return next(c, regs)
		}, 1, costALU

	case dCmp:
		if k := cmpKernel(d.src); k != nil {
			return compileArith(d, next, k), 1, costALU
		}
		dst, src := d.dst, d.src
		av, bv := d.a, d.b
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = cmpOp(av.get(regs), bv.get(regs), src)
			return next(c, regs)
		}, 1, costALU

	case dConv:
		dst, av, src := d.dst, d.a, d.src
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = execConv(av.get(regs), src)
			return next(c, regs)
		}, 1, costALU

	case dAlloca:
		dst, off, size := d.dst, uint64(d.off), uint64(d.size)
		return func(c *cctx, regs []uint64) *cspan {
			addr := c.f.fp + off
			regs[dst] = addr
			if ck := c.v.cfg.Checker; ck != nil {
				ck.OnAlloc(addr, size, "stack")
			}
			return next(c, regs)
		}, 1, costALU

	case dLoad:
		dst, av, mem := d.dst, d.a, d.mem
		msize := uint64(mem.Size())
		isPtr := mem == ir.MemPtr
		wide := mem64(mem)
		undoI, undoS := tailInsts, tailSim+costMem
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			addr := av.get(regs)
			if ck := v.cfg.Checker; ck != nil {
				if err := ck.OnLoad(addr, msize); err != nil {
					return c.fail(fip, d, undoI, undoS, err)
				}
			}
			var val uint64
			var err error
			if wide {
				val, err = v.mem.ReadU64(addr)
			} else {
				val, err = v.loadMem(addr, mem)
			}
			if err != nil {
				return c.fail(fip, d, undoI, undoS, err)
			}
			regs[dst] = val
			v.stats.Loads++
			if isPtr {
				v.stats.PtrLoads++
			}
			return next(c, regs)
		}, 1, costMem

	case dStore:
		av, bv, mem := d.a, d.b, d.mem
		msize := uint64(mem.Size())
		isPtr := mem == ir.MemPtr
		wide := mem64(mem)
		undoI, undoS := tailInsts, tailSim+costMem
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			addr := av.get(regs)
			if ck := v.cfg.Checker; ck != nil {
				if err := ck.OnStore(addr, msize); err != nil {
					return c.fail(fip, d, undoI, undoS, err)
				}
			}
			val := bv.get(regs)
			var err error
			if wide {
				err = v.mem.WriteU64(addr, val)
			} else {
				err = v.storeMem(addr, val, mem)
			}
			if err != nil {
				return c.fail(fip, d, undoI, undoS, err)
			}
			v.stats.Stores++
			if isPtr {
				v.stats.PtrStores++
				if pf := v.cfg.PtrStoreFault; pf != nil {
					if mask := pf(addr, val); mask != 0 {
						_ = v.mem.WriteU64(addr, val^mask)
					}
				}
			}
			return next(c, regs)
		}, 1, costMem

	case dGEP:
		dst, size, off := d.dst, uint64(d.size), uint64(d.off)
		if d.a.reg >= 0 && d.b.reg >= 0 {
			a, b := d.a.reg, d.b.reg
			return func(c *cctx, regs []uint64) *cspan {
				regs[dst] = regs[a] + regs[b]*size + off
				return next(c, regs)
			}, 1, costALU
		}
		if d.a.reg < 0 && d.b.reg >= 0 {
			// Globals decode to absolute addresses, so a constant base
			// indexed by a register is the dominant array-access shape.
			base, b := d.a.imm, d.b.reg
			return func(c *cctx, regs []uint64) *cspan {
				regs[dst] = base + regs[b]*size + off
				return next(c, regs)
			}, 1, costALU
		}
		av, bv := d.a, d.b
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = av.get(regs) + bv.get(regs)*size + off
			return next(c, regs)
		}, 1, costALU

	case dCheck:
		av, basev, bndv := d.a, d.base, d.bnd
		undoI, undoS := tailInsts, tailSim
		if !d.tmeta {
			// Non-temporal check inlined: replicates checkAccess with
			// tmeta=false (counters first — a failing check still counts).
			asize, kind := d.asize, d.checkK
			incLoad, incStore := kind == ir.CheckLoad, kind == ir.CheckStore
			return func(c *cctx, regs []uint64) *cspan {
				v := c.v
				ptr := av.get(regs)
				base := basev.get(regs)
				bound := bndv.get(regs)
				v.stats.Checks++
				v.stats.SimInsts += v.cfg.CheckCost
				if incLoad {
					v.stats.LoadChecks++
				} else if incStore {
					v.stats.StoreChecks++
				}
				if ptr < base || ptr+asize > bound {
					return c.fail(fip, d, undoI, undoS, &SpatialViolation{Kind: kind,
						Ptr: ptr, Base: base, Bound: bound, Size: asize, Func: fname})
				}
				return next(c, regs)
			}, 1, 0
		}
		return func(c *cctx, regs []uint64) *cspan {
			if err := c.v.fastCheck(fname, d,
				av.get(regs), basev.get(regs), bndv.get(regs), regs); err != nil {
				return c.fail(fip, d, undoI, undoS, err)
			}
			return next(c, regs)
		}, 1, 0

	case dCheckCall:
		av, basev, bndv := d.a, d.base, d.bnd
		undoI, undoS := tailInsts, tailSim
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			ptr := av.get(regs)
			base := basev.get(regs)
			bound := bndv.get(regs)
			v.stats.Checks++
			v.stats.SimInsts += v.cfg.CheckCost
			v.stats.CallChecks++
			if base != ptr || bound != ptr || v.funcByAddr(ptr) == nil {
				return c.fail(fip, d, undoI, undoS, &SpatialViolation{Kind: ir.CheckCall,
					Ptr: ptr, Base: base, Bound: bound, Func: fname})
			}
			return next(c, regs)
		}, 1, 0

	case dMetaLoad:
		av := d.a
		dst, dst2, dst3, dst4 := d.dst, d.dst2, d.dst3, d.dst4
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			addr := av.get(regs)
			var e meta.Entry
			if v.mcache != nil {
				e = v.mcache.Lookup(addr)
			} else {
				e = v.fac.Lookup(addr)
			}
			regs[dst] = e.Base
			regs[dst2] = e.Bound
			if dst3 != ir.NoReg {
				regs[dst3] = e.Key
				regs[dst4] = e.Lock
			}
			v.stats.MetaLoads++
			c.st.sim += v.lookupCost
			return next(c, regs)
		}, 1, 0

	case dMetaStore:
		av, basev, bndv := d.a, d.base, d.bnd
		tmeta, keyv, lockv := d.tmeta, d.key, d.lock
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			addr := av.get(regs)
			e := meta.Entry{Base: basev.get(regs), Bound: bndv.get(regs)}
			if tmeta {
				e.Key, e.Lock = keyv.get(regs), lockv.get(regs)
			}
			if v.mcache != nil {
				v.mcache.Update(addr, e)
			} else {
				v.fac.Update(addr, e)
			}
			v.stats.MetaStores++
			c.st.sim += v.updateCost
			return next(c, regs)
		}, 1, 0

	case dMetaClear:
		av, bv := d.a, d.b
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			addr := av.get(regs)
			size := bv.get(regs)
			v.fac.Clear(addr, size)
			v.stats.MetaClears++
			c.st.sim += 2 * (size/8 + 1)
			return next(c, regs)
		}, 1, 0

	case dBr:
		t := cf.spanAt[d.target]
		return func(c *cctx, regs []uint64) *cspan {
			return t
		}, 1, costBr

	case dCondBr:
		t, e := cf.spanAt[d.target], cf.spanAt[d.elseT]
		if d.a.reg >= 0 {
			a := d.a.reg
			return func(c *cctx, regs []uint64) *cspan {
				if regs[a] != 0 {
					return t
				}
				return e
			}, 1, costCondBr
		}
		av := d.a
		return func(c *cctx, regs []uint64) *cspan {
			if av.get(regs) != 0 {
				return t
			}
			return e
		}, 1, costCondBr

	case dCall:
		// execCallFast does its own Insts/SimInsts accounting and flushes
		// before builtins, exactly as under the fast engine; the span
		// contributes nothing up front. The call terminates its span, so
		// by the time it runs every pre-deducted step has executed and
		// the flushed clock is exact.
		return func(c *cctx, regs []uint64) *cspan {
			f := c.f
			f.fip = fip
			if err := c.v.execCallFast(f, d, c.st); err != nil {
				c.err = wrapFastErr(f, d, err)
				return nil
			}
			return nil
		}, 0, 0

	case dRet:
		src := d.src
		return func(c *cctx, regs []uint64) *cspan {
			f := c.f
			f.fip = fip
			if err := c.v.execRet(f, src); err != nil {
				c.err = wrapFastErr(f, d, err)
				return nil
			}
			return nil
		}, 1, 0

	case dUnreachable:
		err := wrapSiteErr(fname, d, &RuntimeError{
			Msg: "reached unreachable code in " + fname})
		return func(c *cctx, regs []uint64) *cspan {
			c.f.fip = fip
			c.err = err
			return nil
		}, 1, 0

	case dFellOff:
		// The reference engine charges the step but not Insts; the
		// sentinel has no source instruction and reports bare.
		err := &RuntimeError{Msg: fmt.Sprintf(
			"fell off block b%d in %s", d.blk, fname)}
		return func(c *cctx, regs []uint64) *cspan {
			c.f.fip = fip
			c.err = err
			return nil
		}, 0, 0

	case dGEPCheckLoad:
		return compileGEPCheckLoad(df, fip, next, tailInsts, tailSim), 3, costALU + costMem

	case dGEPCheckStore:
		return compileGEPCheckStore(df, fip, next, tailInsts, tailSim), 3, costALU + costMem

	case dCheckMetaLoad:
		return compileCheckMetaLoad(df, fip, next, tailInsts, tailSim), 2, 0

	default: // dBad
		err := wrapSiteErr(fname, d, &RuntimeError{Msg: fmt.Sprintf(
			"malformed instruction in %s", fname)})
		return func(c *cctx, regs []uint64) *cspan {
			c.f.fip = fip
			c.err = err
			return nil
		}, 1, 0
	}
}

// compileBinFull emits a fully inlined closure for a full-width integer
// binary op — wrapInt is the identity at 64 bits, so the closure body is
// one machine op with no kernel indirection (the captured-kernel call
// showed up as its own hot frame in the profile). Returns nil when the
// op needs masking, can fault, or is a float op.
func compileBinFull(d *dinst, next cop) cop {
	in := d.src
	if in.IntWidth != 0 && in.IntWidth < 64 {
		return nil
	}
	switch in.Op {
	case ir.OpAdd:
		return compileAddOp(d, next)
	case ir.OpSub:
		return compileSubOp(d, next)
	case ir.OpMul:
		return compileMulOp(d, next)
	case ir.OpAnd:
		return compileAndOp(d, next)
	case ir.OpOr:
		return compileOrOp(d, next)
	case ir.OpXor:
		return compileXorOp(d, next)
	}
	return nil
}

// The six helpers below are the same lowering unrolled per operator:
// reg-reg and reg-imm shapes get closures whose bodies are the bare
// machine op; other shapes read through the generic operand getter.

func compileAddOp(d *dinst, next cop) cop {
	dst := d.dst
	if d.a.reg >= 0 && d.b.reg >= 0 {
		a, b := d.a.reg, d.b.reg
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] + regs[b]; return next(c, regs) }
	}
	if d.a.reg >= 0 {
		a, imm := d.a.reg, d.b.imm
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] + imm; return next(c, regs) }
	}
	av, bv := d.a, d.b
	return func(c *cctx, regs []uint64) *cspan { regs[dst] = av.get(regs) + bv.get(regs); return next(c, regs) }
}

func compileSubOp(d *dinst, next cop) cop {
	dst := d.dst
	if d.a.reg >= 0 && d.b.reg >= 0 {
		a, b := d.a.reg, d.b.reg
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] - regs[b]; return next(c, regs) }
	}
	if d.a.reg >= 0 {
		a, imm := d.a.reg, d.b.imm
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] - imm; return next(c, regs) }
	}
	av, bv := d.a, d.b
	return func(c *cctx, regs []uint64) *cspan { regs[dst] = av.get(regs) - bv.get(regs); return next(c, regs) }
}

func compileMulOp(d *dinst, next cop) cop {
	dst := d.dst
	if d.a.reg >= 0 && d.b.reg >= 0 {
		a, b := d.a.reg, d.b.reg
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] * regs[b]; return next(c, regs) }
	}
	if d.a.reg >= 0 {
		a, imm := d.a.reg, d.b.imm
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] * imm; return next(c, regs) }
	}
	av, bv := d.a, d.b
	return func(c *cctx, regs []uint64) *cspan { regs[dst] = av.get(regs) * bv.get(regs); return next(c, regs) }
}

func compileAndOp(d *dinst, next cop) cop {
	dst := d.dst
	if d.a.reg >= 0 && d.b.reg >= 0 {
		a, b := d.a.reg, d.b.reg
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] & regs[b]; return next(c, regs) }
	}
	if d.a.reg >= 0 {
		a, imm := d.a.reg, d.b.imm
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] & imm; return next(c, regs) }
	}
	av, bv := d.a, d.b
	return func(c *cctx, regs []uint64) *cspan { regs[dst] = av.get(regs) & bv.get(regs); return next(c, regs) }
}

func compileOrOp(d *dinst, next cop) cop {
	dst := d.dst
	if d.a.reg >= 0 && d.b.reg >= 0 {
		a, b := d.a.reg, d.b.reg
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] | regs[b]; return next(c, regs) }
	}
	if d.a.reg >= 0 {
		a, imm := d.a.reg, d.b.imm
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] | imm; return next(c, regs) }
	}
	av, bv := d.a, d.b
	return func(c *cctx, regs []uint64) *cspan { regs[dst] = av.get(regs) | bv.get(regs); return next(c, regs) }
}

func compileXorOp(d *dinst, next cop) cop {
	dst := d.dst
	if d.a.reg >= 0 && d.b.reg >= 0 {
		a, b := d.a.reg, d.b.reg
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] ^ regs[b]; return next(c, regs) }
	}
	if d.a.reg >= 0 {
		a, imm := d.a.reg, d.b.imm
		return func(c *cctx, regs []uint64) *cspan { regs[dst] = regs[a] ^ imm; return next(c, regs) }
	}
	av, bv := d.a, d.b
	return func(c *cctx, regs []uint64) *cspan { regs[dst] = av.get(regs) ^ bv.get(regs); return next(c, regs) }
}

// compileArith builds a kernel-backed closure specialized on the operand
// shapes the decoder actually emits (reg-reg and reg-imm dominate the
// profile; anything else takes the generic read). Only the sub-64-bit
// and shift kernels still route through here — the full-width ops have
// dedicated inlined lowerings above.
func compileArith(d *dinst, next cop, k func(a, b uint64) uint64) cop {
	dst := d.dst
	if d.a.reg >= 0 && d.b.reg >= 0 {
		a, b := d.a.reg, d.b.reg
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = k(regs[a], regs[b])
			return next(c, regs)
		}
	}
	if d.a.reg >= 0 {
		a, imm := d.a.reg, d.b.imm
		return func(c *cctx, regs []uint64) *cspan {
			regs[dst] = k(regs[a], imm)
			return next(c, regs)
		}
	}
	av, bv := d.a, d.b
	return func(c *cctx, regs []uint64) *cspan {
		regs[dst] = k(av.get(regs), bv.get(regs))
		return next(c, regs)
	}
}

// mem64 reports whether mt loads/stores a raw 64-bit word, letting the
// compiled tier call Mem.ReadU64/WriteU64 directly instead of going
// through the loadMem/storeMem type switch.
func mem64(mt ir.MemType) bool {
	return mt == ir.MemI64 || mt == ir.MemF64 || mt == ir.MemPtr
}

// compileGEPCheckLoad lowers the fused GEP+Check+Load superinstruction.
// The fixed contribution is insts 3, sim costALU+costMem; each failure
// site undoes exactly the components the fast engine would not have
// counted (fastexec.go's per-component accounting). The dominant
// non-temporal 64-bit shape gets a fully inlined body: spatial compare
// and word load with no helper calls.
func compileGEPCheckLoad(df *dfunc, fip int, next cop, tailInsts, tailSim uint64) cop {
	code := df.code
	d := &code[fip]
	fname := df.fn.Name
	av, bv, basev, bndv := d.a, d.b, d.base, d.bnd
	size, off := uint64(d.size), uint64(d.off)
	dst, dst2, mem := d.dst, d.dst2, d.mem
	msize := uint64(mem.Size())
	isPtr := mem == ir.MemPtr
	// Check failure: GEP and the check itself counted (insts 2, sim
	// costALU); load failure: all three insts counted, costMem not.
	chkUndoI, chkUndoS := tailInsts+1, tailSim+costMem
	ldUndoI, ldUndoS := tailInsts, tailSim+costMem
	if !d.tmeta && mem64(mem) {
		asize := d.asize
		kind := d.checkK
		incLoad, incStore := kind == ir.CheckLoad, kind == ir.CheckStore
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			t := av.get(regs) + bv.get(regs)*size + off
			regs[dst] = t
			base := basev.get(regs)
			bound := bndv.get(regs)
			v.stats.Checks++
			v.stats.SimInsts += v.cfg.CheckCost
			if incLoad {
				v.stats.LoadChecks++
			} else if incStore {
				v.stats.StoreChecks++
			}
			if t < base || t+asize > bound {
				return c.fail(fip, d, chkUndoI, chkUndoS, &SpatialViolation{Kind: kind,
					Ptr: t, Base: base, Bound: bound, Size: asize, Func: fname})
			}
			if ck := v.cfg.Checker; ck != nil {
				if err := ck.OnLoad(t, msize); err != nil {
					return c.fail(fip, d, ldUndoI, ldUndoS, err)
				}
			}
			val, err := v.mem.ReadU64(t)
			if err != nil {
				return c.fail(fip, d, ldUndoI, ldUndoS, err)
			}
			regs[dst2] = val
			v.stats.Loads++
			if isPtr {
				v.stats.PtrLoads++
			}
			return next(c, regs)
		}
	}
	return func(c *cctx, regs []uint64) *cspan {
		v := c.v
		t := av.get(regs) + bv.get(regs)*size + off
		regs[dst] = t
		if err := v.fastCheck(fname, d,
			t, basev.get(regs), bndv.get(regs), regs); err != nil {
			return c.fail(fip, d, chkUndoI, chkUndoS, err)
		}
		if ck := v.cfg.Checker; ck != nil {
			if err := ck.OnLoad(t, msize); err != nil {
				return c.fail(fip, d, ldUndoI, ldUndoS, err)
			}
		}
		val, err := v.loadMem(t, mem)
		if err != nil {
			return c.fail(fip, d, ldUndoI, ldUndoS, err)
		}
		regs[dst2] = val
		v.stats.Loads++
		if isPtr {
			v.stats.PtrLoads++
		}
		return next(c, regs)
	}
}

// compileGEPCheckStore lowers the fused GEP+Check+Store superinstruction
// (same accounting shape as the load form, same specialized hot shape).
func compileGEPCheckStore(df *dfunc, fip int, next cop, tailInsts, tailSim uint64) cop {
	code := df.code
	d := &code[fip]
	fname := df.fn.Name
	av, bv, basev, bndv := d.a, d.b, d.base, d.bnd
	size, off := uint64(d.size), uint64(d.off)
	dst, valv, mem := d.dst, d.args[0], d.mem
	msize := uint64(mem.Size())
	isPtr := mem == ir.MemPtr
	chkUndoI, chkUndoS := tailInsts+1, tailSim+costMem
	stUndoI, stUndoS := tailInsts, tailSim+costMem
	if !d.tmeta && mem64(mem) {
		asize := d.asize
		kind := d.checkK
		incLoad, incStore := kind == ir.CheckLoad, kind == ir.CheckStore
		return func(c *cctx, regs []uint64) *cspan {
			v := c.v
			t := av.get(regs) + bv.get(regs)*size + off
			regs[dst] = t
			base := basev.get(regs)
			bound := bndv.get(regs)
			v.stats.Checks++
			v.stats.SimInsts += v.cfg.CheckCost
			if incLoad {
				v.stats.LoadChecks++
			} else if incStore {
				v.stats.StoreChecks++
			}
			if t < base || t+asize > bound {
				return c.fail(fip, d, chkUndoI, chkUndoS, &SpatialViolation{Kind: kind,
					Ptr: t, Base: base, Bound: bound, Size: asize, Func: fname})
			}
			if ck := v.cfg.Checker; ck != nil {
				if err := ck.OnStore(t, msize); err != nil {
					return c.fail(fip, d, stUndoI, stUndoS, err)
				}
			}
			val := valv.get(regs)
			if err := v.mem.WriteU64(t, val); err != nil {
				return c.fail(fip, d, stUndoI, stUndoS, err)
			}
			v.stats.Stores++
			if isPtr {
				v.stats.PtrStores++
				if pf := v.cfg.PtrStoreFault; pf != nil {
					if mask := pf(t, val); mask != 0 {
						_ = v.mem.WriteU64(t, val^mask)
					}
				}
			}
			return next(c, regs)
		}
	}
	return func(c *cctx, regs []uint64) *cspan {
		v := c.v
		t := av.get(regs) + bv.get(regs)*size + off
		regs[dst] = t
		if err := v.fastCheck(fname, d,
			t, basev.get(regs), bndv.get(regs), regs); err != nil {
			return c.fail(fip, d, chkUndoI, chkUndoS, err)
		}
		if ck := v.cfg.Checker; ck != nil {
			if err := ck.OnStore(t, msize); err != nil {
				return c.fail(fip, d, stUndoI, stUndoS, err)
			}
		}
		val := valv.get(regs)
		if err := v.storeMem(t, val, mem); err != nil {
			return c.fail(fip, d, stUndoI, stUndoS, err)
		}
		v.stats.Stores++
		if isPtr {
			v.stats.PtrStores++
			if pf := v.cfg.PtrStoreFault; pf != nil {
				if mask := pf(t, val); mask != 0 {
					_ = v.mem.WriteU64(t, val^mask)
				}
			}
		}
		return next(c, regs)
	}
}

// compileCheckMetaLoad lowers the fused Check+MetaLoad superinstruction.
func compileCheckMetaLoad(df *dfunc, fip int, next cop, tailInsts, tailSim uint64) cop {
	code := df.code
	d := &code[fip]
	fname := df.fn.Name
	av, addrv := d.a, d.b
	dst, dst2, dst3, dst4 := d.dst, d.dst2, d.dst3, d.dst4
	// The check is the first component: on failure only it was executed.
	chkUndoI, chkUndoS := tailInsts+1, tailSim
	return func(c *cctx, regs []uint64) *cspan {
		v := c.v
		if err := v.fastCheck(fname, d,
			av.get(regs), d.base.get(regs), d.bnd.get(regs), regs); err != nil {
			return c.fail(fip, d, chkUndoI, chkUndoS, err)
		}
		addr := addrv.get(regs)
		var e meta.Entry
		if v.mcache != nil {
			e = v.mcache.Lookup(addr)
		} else {
			e = v.fac.Lookup(addr)
		}
		regs[dst] = e.Base
		regs[dst2] = e.Bound
		if dst3 != ir.NoReg {
			regs[dst3] = e.Key
			regs[dst4] = e.Lock
		}
		v.stats.MetaLoads++
		c.st.sim += v.lookupCost
		return next(c, regs)
	}
}

// loopCompiled runs the compiled program until the outermost frame
// returns, exit() is called, or an error occurs. It mirrors loopFast's
// accounting contract; the only structural difference is that budget,
// poll, and fixed statistics reconcile per span instead of per
// instruction, with loopFast as the exact-trap backstop when the budget
// cannot cover a whole span.
func (v *VM) loopCompiled() (err error) {
	defer recoverRuntime(&err)
	st := fastState{
		budget: int64(v.limit) - int64(v.steps),
		poll:   int64(deadlinePollMask+1) - int64(v.steps&deadlinePollMask),
	}
	c := &cctx{v: v, st: &st}
	for !v.halted && len(v.stack) > 0 {
		f := &v.stack[len(v.stack)-1]
		cf := f.cf
		if cf == nil || f.fip >= len(cf.df.code) {
			v.flushFast(&st)
			return &RuntimeError{Msg: "no decoded code at resume point in " + f.fn.Name}
		}
		c.f = f
		regs := f.regs
		sp := cf.spanAt[f.fip]
		if sp == nil {
			// Not a span boundary (cannot happen for decoder-produced
			// code); run the rest of the program on the fast engine.
			v.flushFast(&st)
			return v.loopFast()
		}
		for {
			if st.poll <= 0 {
				f.fip = sp.fip
				v.flushFast(&st)
				if v.ctx != nil && v.ctx.Err() != nil {
					return wrapFastErr(f, &cf.df.code[sp.fip], &Trap{Code: TrapDeadline,
						Cause: &RuntimeError{Msg: fmt.Sprintf(
							"deadline exceeded after %d steps: %v", v.steps, v.ctx.Err())}})
				}
				for st.poll <= 0 {
					st.poll += deadlinePollMask + 1
				}
			}
			if st.budget < sp.steps {
				// The remaining budget cannot cover the span: delegate to
				// loopFast, whose per-instruction countdown (and partial
				// fused execution) traps at the exact reference position.
				f.fip = sp.fip
				v.flushFast(&st)
				return v.loopFast()
			}
			st.budget -= sp.steps
			st.poll -= sp.steps
			st.insts += sp.fixedInsts
			st.sim += sp.fixedSim
			next := sp.head(c, regs)
			if next == nil {
				break // frame change or failure: sort it out below
			}
			sp = next
		}
		if c.err != nil {
			v.flushFast(&st)
			return c.err
		}
	}
	v.flushFast(&st)
	return nil
}
