// Package vm executes the IR on a simulated 64-bit flat memory.
//
// The machine is deliberately faithful to the properties the paper's
// evaluation depends on:
//
//   - Control data lives in addressable simulated memory. Every call frame
//     stores a return token and saved frame pointer above the frame's
//     locals (x86-style), function pointers are addresses in a function
//     segment, and jmp_buf contents are ordinary user memory. Buffer
//     overflows therefore genuinely corrupt control data, and the Wilander
//     attack suite (Table 3) genuinely hijacks control flow when checking
//     is off.
//   - Unchecked out-of-bounds accesses that stay within a segment silently
//     corrupt neighbouring objects, as on real hardware; only accesses to
//     unmapped addresses fault.
//   - Every executed IR operation is costed in simulated x86 instructions,
//     with metadata operations costed per the selected facility (hash
//     table ≈ 9, shadow space ≈ 5 — paper §5.1), so overhead ratios have
//     the paper's shape.
package vm

import (
	"encoding/binary"
	"fmt"
)

// Address space layout (all constants are simulated addresses).
const (
	// GlobalBase is where module globals are laid out.
	GlobalBase uint64 = 0x0001_0000
	// HeapBase is the bottom of the heap, which grows upward.
	HeapBase uint64 = 0x0100_0000
	// DefaultHeapSize bounds the heap segment.
	DefaultHeapSize uint64 = 64 << 20
	// StackTop is the top of the stack, which grows downward.
	StackTop uint64 = 0x7000_0000
	// DefaultStackSize bounds the stack segment.
	DefaultStackSize uint64 = 8 << 20
	// FuncBase is the function segment: function i has address
	// FuncBase + i*FuncSlot. Calling such an address invokes the function.
	FuncBase uint64 = 0x7f00_0000_0000
	// FuncSlot spaces function addresses.
	FuncSlot uint64 = 16
	// RetTokenBase marks legitimate return-site tokens.
	RetTokenBase uint64 = 0x7e00_0000_0000
	// JmpTokenBase marks setjmp checkpoint tokens.
	JmpTokenBase uint64 = 0x7d00_0000_0000
)

// Mem is the simulated memory: three byte-array segments.
type Mem struct {
	globals []byte
	globEnd uint64 // GlobalBase + len(globals)

	heap    []byte
	heapEnd uint64 // HeapBase + heapBrk (mapped extent)

	stack     []byte // stack[i] backs address StackBase+i
	stackBase uint64 // StackTop - len(stack)
}

// NewMem builds a memory with the given segment sizes.
func NewMem(globalSize, heapSize, stackSize uint64) *Mem {
	if heapSize == 0 {
		heapSize = DefaultHeapSize
	}
	if stackSize == 0 {
		stackSize = DefaultStackSize
	}
	return &Mem{
		globals:   make([]byte, globalSize),
		globEnd:   GlobalBase + globalSize,
		heap:      make([]byte, heapSize),
		heapEnd:   HeapBase + heapSize,
		stack:     make([]byte, stackSize),
		stackBase: StackTop - stackSize,
	}
}

// slice returns the backing bytes for [addr, addr+size), or an error if
// the range is not mapped within a single segment.
func (m *Mem) slice(addr, size uint64) ([]byte, error) {
	switch {
	case addr >= GlobalBase && addr+size <= m.globEnd && addr+size >= addr:
		off := addr - GlobalBase
		return m.globals[off : off+size], nil
	case addr >= HeapBase && addr+size <= m.heapEnd && addr+size >= addr:
		off := addr - HeapBase
		return m.heap[off : off+size], nil
	case addr >= m.stackBase && addr+size <= StackTop && addr+size >= addr:
		off := addr - m.stackBase
		return m.stack[off : off+size], nil
	}
	return nil, &FaultError{Addr: addr, Size: size}
}

// FaultError is an access to unmapped simulated memory (a segfault).
type FaultError struct {
	Addr uint64
	Size uint64
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("segmentation fault: access of %d bytes at 0x%x", e.Size, e.Addr)
}

// Valid reports whether [addr, addr+size) is mapped.
func (m *Mem) Valid(addr, size uint64) bool {
	_, err := m.slice(addr, size)
	return err == nil
}

// ReadU64 loads 8 little-endian bytes.
func (m *Mem) ReadU64(addr uint64) (uint64, error) {
	b, err := m.slice(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteU64 stores 8 little-endian bytes.
func (m *Mem) WriteU64(addr, v uint64) error {
	b, err := m.slice(addr, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b, v)
	return nil
}

// ReadU32 loads 4 bytes.
func (m *Mem) ReadU32(addr uint64) (uint32, error) {
	b, err := m.slice(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

// WriteU32 stores 4 bytes.
func (m *Mem) WriteU32(addr uint64, v uint32) error {
	b, err := m.slice(addr, 4)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b, v)
	return nil
}

// ReadU16 loads 2 bytes.
func (m *Mem) ReadU16(addr uint64) (uint16, error) {
	b, err := m.slice(addr, 2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

// WriteU16 stores 2 bytes.
func (m *Mem) WriteU16(addr uint64, v uint16) error {
	b, err := m.slice(addr, 2)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(b, v)
	return nil
}

// ReadU8 loads one byte.
func (m *Mem) ReadU8(addr uint64) (byte, error) {
	b, err := m.slice(addr, 1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// WriteU8 stores one byte.
func (m *Mem) WriteU8(addr uint64, v byte) error {
	b, err := m.slice(addr, 1)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// ReadBytes copies size bytes out of memory.
func (m *Mem) ReadBytes(addr, size uint64) ([]byte, error) {
	b, err := m.slice(addr, size)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, b)
	return out, nil
}

// WriteBytes copies data into memory.
func (m *Mem) WriteBytes(addr uint64, data []byte) error {
	b, err := m.slice(addr, uint64(len(data)))
	if err != nil {
		return err
	}
	copy(b, data)
	return nil
}

// CString reads a NUL-terminated string, bounded by maxLen to keep a
// runaway read from scanning the whole segment.
func (m *Mem) CString(addr uint64, maxLen int) (string, error) {
	var out []byte
	for i := 0; i < maxLen; i++ {
		c, err := m.ReadU8(addr + uint64(i))
		if err != nil {
			return string(out), err
		}
		if c == 0 {
			return string(out), nil
		}
		out = append(out, c)
	}
	return string(out), nil
}

// heapAllocator is a first-fit free-list allocator over the heap segment.
// Block bookkeeping lives outside simulated memory, but blocks are placed
// contiguously so an overflow from one allocation corrupts the next — the
// behaviour heap attacks rely on.
type heapAllocator struct {
	brk      uint64 // next fresh address
	limit    uint64
	free     map[uint64][]uint64 // size class -> addresses
	sizes    map[uint64]uint64   // live block -> size
	inUse    uint64
	maxInUse uint64
}

func newHeapAllocator(limit uint64) *heapAllocator {
	return &heapAllocator{
		brk:   HeapBase,
		limit: limit,
		free:  make(map[uint64][]uint64),
		sizes: make(map[uint64]uint64),
	}
}

func roundAlloc(n uint64) uint64 {
	if n == 0 {
		n = 1
	}
	return (n + 15) &^ 15
}

// alloc returns the address of a block of at least size bytes, or 0 when
// out of memory.
func (h *heapAllocator) alloc(size uint64) uint64 {
	cl := roundAlloc(size)
	if lst := h.free[cl]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		h.free[cl] = lst[:len(lst)-1]
		h.sizes[addr] = size
		h.account(cl)
		return addr
	}
	if h.brk+cl > h.limit {
		return 0
	}
	addr := h.brk
	h.brk += cl
	h.sizes[addr] = size
	h.account(cl)
	return addr
}

func (h *heapAllocator) account(cl uint64) {
	h.inUse += cl
	if h.inUse > h.maxInUse {
		h.maxInUse = h.inUse
	}
}

// size returns the live block size at addr (0 if not a live block start).
func (h *heapAllocator) size(addr uint64) uint64 { return h.sizes[addr] }

// release frees the block at addr; reports whether it was live.
func (h *heapAllocator) release(addr uint64) bool {
	sz, ok := h.sizes[addr]
	if !ok {
		return false
	}
	delete(h.sizes, addr)
	cl := roundAlloc(sz)
	h.free[cl] = append(h.free[cl], addr)
	h.inUse -= cl
	return true
}
