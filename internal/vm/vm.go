package vm

import (
	"context"
	"fmt"
	"io"

	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/metrics"
)

// CheckMode selects which accesses the instrumented program checks. The
// IR carries the checks; the mode also informs library wrappers.
type CheckMode int

// Check modes (paper §1: full checking vs store-only checking).
const (
	CheckNone CheckMode = iota
	CheckStoreOnly
	CheckFull
)

func (m CheckMode) String() string {
	return [...]string{"none", "store-only", "full"}[m]
}

// Checker is a runtime checking hook used by the object-based baseline
// tools (Jones–Kelly object table, Valgrind- and Mudflap-style checkers),
// which check uninstrumented programs at object granularity.
type Checker interface {
	Name() string
	OnAlloc(addr, size uint64, zone string)
	OnFree(addr uint64)
	OnLoad(addr, size uint64) error
	OnStore(addr, size uint64) error
}

// DefaultMaxStackDepth bounds activation records when Config.MaxStackDepth
// is zero. Stack-segment memory binds first under default sizes; the depth
// guard is the fail-closed backstop for tiny-frame recursion.
const DefaultMaxStackDepth = 1 << 20

// InterpKind selects the execution engine.
type InterpKind int

// Engines. The fast engine is the default (zero value): it runs the
// module's pre-decoded form (decode.go) with fused superinstructions,
// batched step accounting, and a metadata lookup cache. The reference
// engine is the original per-step switch interpreter, kept as the
// semantic baseline: the differential suite holds all engines to
// identical exit codes, traps, and modeled statistics. The compiled
// engine (compile.go) lowers the decoded form once more into threaded
// code — per-span closure chains with no dispatch switch — and
// reconciles the step/deadline clock at span boundaries.
const (
	InterpFast InterpKind = iota
	InterpRef
	InterpCompiled
)

func (k InterpKind) String() string {
	switch k {
	case InterpRef:
		return "ref"
	case InterpCompiled:
		return "compiled"
	}
	return "fast"
}

// Config parameterizes a VM run.
type Config struct {
	Mode      CheckMode
	Meta      meta.Facility // nil selects a shadow space
	Checker   Checker       // optional baseline checker
	Stdout    io.Writer     // nil discards output
	StepLimit uint64        // max executed instructions (0 = default 4e9)
	HeapSize  uint64
	StackSize uint64
	Args      []string // argv for main
	// CheckCost overrides the modeled instruction cost of one spatial
	// check (default 3: two compares and a branch). Related-scheme
	// emulation (MSCC) uses heavier sequences.
	CheckCost uint64

	// HeapLimit caps live heap bytes; an allocation that would exceed it
	// traps with TrapOOM instead of returning NULL (0 = no cap). This is
	// distinct from HeapSize, which bounds the segment: segment exhaustion
	// keeps C semantics (malloc returns NULL).
	HeapLimit uint64
	// MaxStackDepth caps the number of live activation records; exceeding
	// it traps with TrapStackOverflow (0 = DefaultMaxStackDepth).
	MaxStackDepth int

	// PtrStoreFault, if set, is consulted after every committed
	// pointer-sized store with the slot address and the stored word; a
	// nonzero return value is XORed into the word (fault injection; see
	// internal/faults).
	PtrStoreFault func(addr, val uint64) uint64
	// AllocFault, if set, is consulted before every heap allocation;
	// returning false forces that allocation to fail as if out of memory
	// (malloc returns NULL).
	AllocFault func(size uint64) bool

	// Temporal enables the CETS lock-and-key runtime: the VM issues a
	// fresh key per allocation (heap and stack frames; statics share the
	// constant global key), revokes locks on free/frame-pop/realloc, and
	// checked dereferences verify the key against the lock table before
	// the spatial compare. The driver sets it iff the selected metadata
	// scheme is a -cets kind, matching the core lowering's
	// Options.Temporal.
	Temporal bool

	// Interp selects the execution engine (default InterpFast).
	Interp InterpKind
	// DisableMetaCache turns off the metadata lookup cache under the fast
	// engine. The driver sets it when fault injection wraps the facility:
	// the injector's Lookup consumes scheduled fault events, so a cache
	// hit would silently skip them.
	DisableMetaCache bool
}

// SpatialViolation is a bounds-check failure: SoftBound aborts the
// program (paper §3.1 check()).
type SpatialViolation struct {
	Kind  ir.CheckKind
	Ptr   uint64
	Base  uint64
	Bound uint64
	Size  uint64
	Func  string
}

func (e *SpatialViolation) Error() string {
	return fmt.Sprintf("softbound: spatial violation (%s) in %s: ptr=0x%x size=%d not within [0x%x,0x%x)",
		e.Kind, e.Func, e.Ptr, e.Size, e.Base, e.Bound)
}

// TemporalViolation is a CETS lock-and-key check failure (use-after-free,
// use-after-realloc, use-after-return, double-free): the pointer's key no
// longer matches its lock — the allocation it named is gone. Zero
// key/lock (no temporal metadata recorded for the slot) also fails, so
// the check is fail-closed.
type TemporalViolation struct {
	Kind ir.CheckKind
	Ptr  uint64
	Key  uint64
	Lock uint64
	Func string
}

func (e *TemporalViolation) Error() string {
	return fmt.Sprintf("softbound: temporal violation (%s) in %s: ptr=0x%x key=%d lock=%d no longer names a live allocation",
		e.Kind, e.Func, e.Ptr, e.Key, e.Lock)
}

// BaselineViolation is a violation reported by a baseline Checker.
type BaselineViolation struct {
	Tool string
	Msg  string
}

func (e *BaselineViolation) Error() string { return e.Tool + ": " + e.Msg }

// ControlHijack is recorded when corrupted control data (return token,
// function pointer used via ret, or longjmp buffer) transferred control
// somewhere a legitimate execution never would. The VM continues running
// at the hijacked target — the attack has succeeded.
type ControlHijack struct {
	Via    string // "return-address", "longjmp", "frame-pointer"
	Target string // function name reached
}

// RuntimeError is any other execution error (division by zero, step
// limit, stack overflow, smashed stack).
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return e.Msg }

// WildJumpError is an indirect call through a value that is not a
// function-table address — the dynamic signature of a corrupted or
// forged function pointer. It classifies as TrapWildJump.
type WildJumpError struct {
	Addr uint64 // the value the call went through
	Func string // function containing the call site
}

func (e *WildJumpError) Error() string {
	return fmt.Sprintf("wild jump: call through corrupted function pointer 0x%x in %s",
		e.Addr, e.Func)
}

// frame is one activation record. Register contents are Go-side (they
// model machine registers); fp points at the frame's memory block, which
// holds allocas plus saved fp and the return token.
type frame struct {
	fn   *ir.Func
	regs []uint64
	fp   uint64
	// fpEff is the frame pointer used to locate the saved-FP/return
	// slots at return time. Normally equal to fp; a corrupted saved
	// frame pointer in a callee redirects it (the classic two-stage
	// old-base-pointer attack).
	fpEff uint64
	block int
	ip    int
	// retDst is the caller register receiving the return value.
	retDst            ir.Reg
	retBase, retBound ir.Reg
	retKey, retLock   ir.Reg // temporal return-metadata registers (NoReg if none)
	token             uint64 // the return token written at call time

	// lock is this frame's temporal lock index (0 = none issued); the VM
	// revokes it on every exit path, so pointers into the frame die with
	// the frame.
	lock uint64

	// shadowBase indexes this frame's metadata window on the VM shadow
	// stack: slot shadowBase receives the return metadata, slot
	// shadowBase+1+i carries argument i's metadata. The window is pushed
	// by the caller before the frame and popped when the frame unwinds.
	shadowBase int

	// Variadic support (paper §5.2): arguments beyond the fixed
	// parameters, with their metadata, plus the va_arg cursor. The
	// SoftBound vararg convention passes the argument count and pointer
	// count so decoding can be checked; here both are implied by the
	// slice lengths, and the checked builtins enforce them.
	varargs  []uint64
	varMetas []meta.Entry
	vaCursor int

	// Fast-engine state: the decoded body and the flat instruction index
	// (decode.go). Maintained alongside block/ip so cold paths shared
	// with the reference engine (hijacks, diagnostics) keep working.
	// cf is the compiled body (compile.go), set only under the compiled
	// engine; fip doubles as the span-entry index there.
	df  *dfunc
	cf  *cfunc
	fip int
}

// jmpCheckpoint is a setjmp capture.
type jmpCheckpoint struct {
	depth     int
	shadowLen int // shadow-stack length to restore on longjmp
	block     int
	ip        int // index of the setjmp call instruction
	fip       int // flat index of the same instruction (fast engine)
	retDst    ir.Reg
}

// VM executes a linked module.
//
// Isolation contract: a VM owns all of its mutable state (memory,
// allocator, stack, metadata facility, statistics) and treats the module
// as read-only, and the package keeps no mutable globals — so distinct
// VMs may run concurrently, even over the same module, without
// synchronization. The parallel benchmark harness depends on this;
// isolation_test.go holds it under the race detector.
type VM struct {
	mod   *ir.Module
	mem   *Mem
	alloc *heapAllocator
	cfg   Config
	fac   meta.Facility
	stats metrics.Stats

	// prog is the module's pre-decoded form (nil under the reference
	// engine); cprog is the threaded-code form lowered from it (nil
	// unless the compiled engine is selected); mcache, when non-nil, is
	// the metadata lookup cache that v.fac has been replaced with, held
	// concretely so the hot metaload path probes it without an interface
	// dispatch.
	prog   *program
	cprog  *cprogram
	mcache *meta.LookupCache

	// argScratch is a per-VM buffer the fast call path reuses for builtin
	// argument marshaling, so steady-state calls allocate nothing.
	// Builtins never re-enter user code, so one buffer suffices.
	argScratch []uint64

	// shadow is the metadata shadow stack (paper §3.3; softboundcets'
	// __softboundcets_*_shadow_stack): one window of (base, bound) slots
	// per in-flight call, pushed by the caller and popped by the dynamic
	// callee's layout. The backing array is reused across calls — length
	// resets on pop, capacity persists — so the steady-state call path
	// stays allocation-free once the deepest window has been seen.
	shadow []meta.Entry

	// lookupCost/updateCost cache the facility's constant modeled costs so
	// the fast metaload/metastore handlers skip the interface dispatch.
	lookupCost uint64
	updateCost uint64

	globalAddrs map[string]uint64
	globalSizes map[string]uint64
	funcs       []*ir.Func
	funcAddrs   map[string]uint64

	stack   []frame
	sp      uint64
	nextTok uint64

	// Temporal (CETS) lock table: locks[i] holds the key of the live
	// allocation owning lock i, or 0 once revoked. Index 0 is never used
	// (a zero lock fails closed); index 1 is the global lock (key 1),
	// never revoked. freeLocks recycles revoked indices — the analogue of
	// CETS reusing lock locations — and heapLocks maps live heap block
	// addresses to their lock index so free/realloc can revoke.
	locks     []uint64
	freeLocks []uint64
	nextKey   uint64
	heapLocks map[uint64]uint64

	jmpPoints map[uint64]*jmpCheckpoint
	jmpSPs    map[uint64]uint64
	nextJmp   uint64

	rngState uint64

	// Hijacks records successful control-flow attacks (empty in healthy
	// runs). Table 3 asserts on these.
	Hijacks []ControlHijack

	stdout   io.Writer
	halted   bool
	exitCode int64
	steps    uint64
	limit    uint64

	// ctx carries the wall-clock deadline during RunContext /
	// CallFunctionContext; the step loop polls it periodically.
	ctx      context.Context
	maxDepth int
	allocs   uint64 // heap allocations performed (fault-injection event count)
}

// New builds a VM for the module. The module must already be linked and,
// if desired, instrumented.
func New(mod *ir.Module, cfg Config) (*VM, error) {
	fac := cfg.Meta
	if fac == nil {
		fac = meta.NewShadowSpace()
	}
	v := &VM{
		mod:         mod,
		cfg:         cfg,
		fac:         fac,
		globalAddrs: make(map[string]uint64),
		globalSizes: make(map[string]uint64),
		funcAddrs:   make(map[string]uint64),
		jmpPoints:   make(map[uint64]*jmpCheckpoint),
		jmpSPs:      make(map[uint64]uint64),
		rngState:    0x9e3779b97f4a7c15,
		stdout:      cfg.Stdout,
		limit:       cfg.StepLimit,
	}
	if v.stdout == nil {
		v.stdout = io.Discard
	}
	if v.limit == 0 {
		v.limit = 4_000_000_000
	}
	if v.cfg.CheckCost == 0 {
		v.cfg.CheckCost = costCheck
	}
	v.maxDepth = cfg.MaxStackDepth
	if v.maxDepth == 0 {
		v.maxDepth = DefaultMaxStackDepth
	}
	if cfg.Temporal {
		v.locks = []uint64{0, 1} // slot 0 invalid; slot 1 = global lock, key 1
		v.nextKey = 2
		v.heapLocks = make(map[uint64]uint64)
	}

	// Lay out globals and function addresses. The layout is a pure,
	// deterministic function of the module (decode.go helpers), shared
	// with the decode stage so pre-resolved operand addresses agree with
	// the VM's own maps.
	off := layoutGlobals(mod, v.globalAddrs, v.globalSizes)
	v.mem = NewMem(off, cfg.HeapSize, cfg.StackSize)
	v.alloc = newHeapAllocator(v.mem.heapEnd)
	v.sp = StackTop

	v.funcs = append(v.funcs, mod.Funcs...)
	layoutFuncs(mod, v.funcAddrs)

	// Fast and compiled engines: fetch (or build) the module's
	// pre-decoded program and put the metadata lookup cache in front of
	// the facility. Decode is module-pure — global and function addresses
	// are a deterministic function of the module — so the decoded form is
	// shared across all VMs of this module via the ir-side cache. The
	// compiled engine layers the threaded-code form on top, cached the
	// same way (one compile serves every VM of the module, whichever
	// engine each selects).
	if cfg.Interp != InterpRef {
		v.prog = mod.Decoded(func() any { return decodeModule(mod) }).(*program)
		if cfg.Interp == InterpCompiled {
			v.cprog = mod.Compiled(func() any { return compileProgram(v.prog) }).(*cprogram)
		}
		if !cfg.DisableMetaCache {
			v.mcache = meta.NewLookupCache(v.fac)
			v.fac = v.mcache
		}
	}
	v.lookupCost = uint64(v.fac.Costs().Lookup)
	v.updateCost = uint64(v.fac.Costs().Update)

	// Initialize global contents and relocations.
	for _, g := range mod.Globals {
		addr := v.globalAddrs[g.Name]
		if len(g.Init) > 0 {
			if err := v.mem.WriteBytes(addr, g.Init); err != nil {
				return nil, err
			}
		}
		if v.cfg.Checker != nil {
			v.cfg.Checker.OnAlloc(addr, uint64(g.Size), "global")
		}
	}
	for _, g := range mod.Globals {
		addr := v.globalAddrs[g.Name]
		for _, pi := range g.PtrInits {
			var target uint64
			var base, bound uint64
			if pi.Func != "" {
				target = v.funcAddrs[pi.Func]
				base, bound = target, target // function-pointer encoding
				if target == 0 {
					return nil, fmt.Errorf("vm: undefined function %q in initializer of %q", pi.Func, g.Name)
				}
			} else {
				t, ok := v.globalAddrs[pi.Sym]
				if !ok {
					return nil, fmt.Errorf("vm: undefined global %q in initializer of %q", pi.Sym, g.Name)
				}
				target = t + uint64(pi.Addend)
				base = t
				bound = t + v.globalSizes[pi.Sym]
			}
			if err := v.mem.WriteU64(addr+uint64(pi.Offset), target); err != nil {
				return nil, err
			}
			// Seed metadata for statically initialized pointers
			// (paper §5.2 "global variables": SoftBound emits
			// constructor code to do this). Statics carry the global
			// key/lock, which is never revoked.
			e := meta.Entry{Base: base, Bound: bound}
			if cfg.Temporal {
				e.Key, e.Lock = globalKey, globalLock
			}
			v.fac.Update(addr+uint64(pi.Offset), e)
		}
	}
	return v, nil
}

// Stats returns the accumulated execution statistics.
func (v *VM) Stats() *metrics.Stats {
	occ := v.fac.Occupancy()
	v.stats.MetaBytes = occ.Bytes
	v.stats.MetaLive = occ.Live
	v.stats.MaxHeap = v.alloc.maxInUse
	if v.mcache != nil {
		v.stats.MetaCacheHits = v.mcache.Hits()
		v.stats.MetaCacheMisses = v.mcache.Misses()
		// The modeled cost line under the lookaside: every probe pays
		// CacheHitCost, misses additionally pay the facility's lookup.
		// SimInsts keeps the cache-less accounting so engines compare
		// bit-for-bit; this line is the what-if the evaluation plots.
		v.stats.MetaCacheSimInsts = (v.mcache.Hits()+v.mcache.Misses())*meta.CacheHitCost +
			v.mcache.Misses()*uint64(v.fac.Costs().Lookup)
	}
	return &v.stats
}

// Mem exposes the memory (tests inspect corruption effects).
func (v *VM) Mem() *Mem { return v.mem }

// GlobalAddr returns the simulated address of a global, 0 if absent.
func (v *VM) GlobalAddr(name string) uint64 { return v.globalAddrs[name] }

// FuncAddr returns the simulated address of a function, 0 if absent.
func (v *VM) FuncAddr(name string) uint64 { return v.funcAddrs[name] }

// ExitCode returns the program's exit status after Run.
func (v *VM) ExitCode() int64 { return v.exitCode }

// The global temporal identity: statics and functions share key 1 under
// lock 1, which New seeds live and nothing ever revokes.
const (
	globalKey  = 1
	globalLock = 1
)

// issueLock mints a fresh (key, lock) pair for a new allocation,
// recycling revoked lock indices like CETS reuses lock locations — a
// recycled index holds a *different* key, so stale pointers into the old
// allocation still mismatch.
func (v *VM) issueLock() (key, lock uint64) {
	key = v.nextKey
	v.nextKey++
	if n := len(v.freeLocks); n > 0 {
		lock = v.freeLocks[n-1]
		v.freeLocks = v.freeLocks[:n-1]
	} else {
		lock = uint64(len(v.locks))
		v.locks = append(v.locks, 0)
	}
	v.locks[lock] = key
	return key, lock
}

// revokeLock kills a lock: every pointer still carrying its key fails the
// temporal check from now on. The global lock is never revoked.
func (v *VM) revokeLock(lock uint64) {
	if lock <= globalLock || lock >= uint64(len(v.locks)) {
		return
	}
	if v.locks[lock] != 0 {
		v.locks[lock] = 0
		v.freeLocks = append(v.freeLocks, lock)
	}
}

// lockLive reports whether (key, lock) still names a live allocation.
// Zero key or lock — no temporal metadata recorded — fails closed.
func (v *VM) lockLive(key, lock uint64) bool {
	return key != 0 && lock != 0 && lock < uint64(len(v.locks)) && v.locks[lock] == key
}

// funcByAddr resolves a function-segment address.
func (v *VM) funcByAddr(addr uint64) *ir.Func {
	if addr < FuncBase {
		return nil
	}
	idx := (addr - FuncBase) / FuncSlot
	if (addr-FuncBase)%FuncSlot != 0 || idx >= uint64(len(v.funcs)) {
		return nil
	}
	return v.funcs[idx]
}

// Run executes main (argc/argv are synthesized from cfg.Args) and returns
// the program's exit code. Every non-nil error is a *Trap (possibly
// wrapped with the faulting site).
func (v *VM) Run() (int64, error) {
	return v.RunContext(context.Background())
}

// RunContext is Run under a wall-clock deadline: when ctx expires the VM
// traps with TrapDeadline at the next step-loop poll instead of running
// to its step budget.
func (v *VM) RunContext(ctx context.Context) (int64, error) {
	code, err := v.run(ctx)
	return code, Classify(err)
}

func (v *VM) run(ctx context.Context) (int64, error) {
	v.ctx = ctx
	entry := "main"
	if v.mod.Lookup("main") == nil {
		return -1, &RuntimeError{Msg: "vm: no main function"}
	}
	mainFn := v.mod.Lookup(entry)

	// Build argv in heap memory.
	args := append([]string{"prog"}, v.cfg.Args...)
	argvAddr, err := v.allocate(uint64(8 * len(args)))
	if err != nil {
		return -1, err
	}
	for i, a := range args {
		sAddr, err := v.allocate(uint64(len(a) + 1))
		if err != nil {
			return -1, err
		}
		if err := v.mem.WriteBytes(sAddr, append([]byte(a), 0)); err != nil {
			return -1, err
		}
		if err := v.mem.WriteU64(argvAddr+uint64(8*i), sAddr); err != nil {
			return -1, err
		}
		se := meta.Entry{Base: sAddr, Bound: sAddr + uint64(len(a)+1)}
		if v.cfg.Temporal {
			// argv strings live for the whole program: global identity.
			se.Key, se.Lock = globalKey, globalLock
		}
		v.fac.Update(argvAddr+uint64(8*i), se)
	}

	callArgs := []uint64{uint64(len(args)), argvAddr}
	callMeta := []meta.Entry{{}, {Base: argvAddr, Bound: argvAddr + uint64(8*len(args))}}
	if v.cfg.Temporal {
		callMeta[1].Key, callMeta[1].Lock = globalKey, globalLock
	}
	if mainFn.OrigParams < len(callArgs) {
		callArgs = callArgs[:mainFn.OrigParams]
		callMeta = callMeta[:mainFn.OrigParams]
	}
	// Entry calls use the same shadow-stack ABI as everything else: push
	// a window, fill argv's slot, let the callee pop by its own layout.
	wbase := v.pushShadow(len(callArgs))
	for i := range callArgs {
		v.shadow[wbase+1+i] = callMeta[i]
	}
	if err := v.pushFrame(mainFn, callArgs, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg); err != nil {
		return -1, err
	}
	nf := &v.stack[len(v.stack)-1]
	nf.shadowBase = wbase
	v.seedShadowParams(nf, len(callArgs))
	if err := v.runLoop(); err != nil {
		return v.exitCode, err
	}
	return v.exitCode, nil
}

// runLoop dispatches to the configured engine.
func (v *VM) runLoop() error {
	if v.cprog != nil {
		return v.loopCompiled()
	}
	if v.prog != nil {
		return v.loopFast()
	}
	return v.loop()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CallFunction invokes an arbitrary function with integer arguments (test
// and harness helper); the VM must be freshly constructed.
func (v *VM) CallFunction(name string, args ...uint64) (int64, error) {
	return v.CallFunctionContext(context.Background(), name, args...)
}

// CallFunctionContext is CallFunction under a wall-clock deadline.
func (v *VM) CallFunctionContext(ctx context.Context, name string, args ...uint64) (int64, error) {
	v.ctx = ctx
	fn := v.mod.Lookup(name)
	if fn == nil {
		return -1, Classify(&RuntimeError{Msg: "vm: no function " + name})
	}
	wbase := v.pushShadow(len(args))
	if err := v.pushFrame(fn, args, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg); err != nil {
		return -1, Classify(err)
	}
	nf := &v.stack[len(v.stack)-1]
	nf.shadowBase = wbase
	v.seedShadowParams(nf, len(args))
	if err := v.runLoop(); err != nil {
		return v.exitCode, Classify(err)
	}
	return v.exitCode, nil
}

// allocate is the central heap-allocation path: it applies injected
// allocation faults and the configured heap cap before delegating to the
// allocator. Address 0 with a nil error is C-style exhaustion (malloc
// returns NULL); a non-nil error is the fail-closed TrapOOM from the
// heap cap.
func (v *VM) allocate(size uint64) (uint64, error) {
	v.allocs++
	if v.cfg.AllocFault != nil && !v.cfg.AllocFault(size) {
		return 0, nil
	}
	if v.cfg.HeapLimit != 0 && v.alloc.inUse+roundAlloc(size) > v.cfg.HeapLimit {
		return 0, &Trap{Code: TrapOOM, Cause: &RuntimeError{Msg: fmt.Sprintf(
			"heap cap exceeded: %d bytes live + %d requested > %d limit",
			v.alloc.inUse, size, v.cfg.HeapLimit)}}
	}
	return v.alloc.alloc(size), nil
}

// pushShadow reserves a zeroed call window of 1+nargs metadata slots on
// the shadow stack — slot 0 for the callee's return metadata, slot 1+i
// for argument i — and returns its base index. The backing array is
// reused across calls (length shrinks on pop, capacity persists), so the
// steady-state call path allocates nothing.
func (v *VM) pushShadow(nargs int) int {
	base := len(v.shadow)
	need := base + 1 + nargs
	if cap(v.shadow) >= need {
		v.shadow = v.shadow[:need]
		clear(v.shadow[base:need])
		return base
	}
	for len(v.shadow) < need {
		v.shadow = append(v.shadow, meta.Entry{})
	}
	return base
}

// seedShadowParams pops the metadata for a transformed callee's pointer
// parameters out of its shadow window into the appended base/bound
// parameter registers — by the *dynamic* callee's parameter layout, not
// the call site's static signature (the compatibility contract of paper
// §3.3/§5.2). Slots that carry no metadata (non-pointer arguments,
// missing arguments, out-of-range indices) yield NULL bounds, which
// fail closed at the first dereference. nargs is the number of actual
// arguments the call supplied.
func (v *VM) seedShadowParams(nf *frame, nargs int) {
	fn := nf.fn
	if !fn.Transformed {
		return
	}
	pos := fn.OrigParams
	for i := 0; i < fn.OrigParams; i++ {
		if !fn.Params[i].IsPtr {
			continue
		}
		var e meta.Entry
		if idx := nf.shadowBase + 1 + i; i < nargs && idx < len(v.shadow) {
			e = v.shadow[idx]
		}
		if pos < len(fn.ParamRegs) {
			nf.regs[fn.ParamRegs[pos]] = e.Base
		}
		pos++
		if pos < len(fn.ParamRegs) {
			nf.regs[fn.ParamRegs[pos]] = e.Bound
		}
		pos++
		if fn.Temporal {
			// Temporal callees pop four metadata registers per pointer
			// parameter (base, bound, key, lock).
			if pos < len(fn.ParamRegs) {
				nf.regs[fn.ParamRegs[pos]] = e.Key
			}
			pos++
			if pos < len(fn.ParamRegs) {
				nf.regs[fn.ParamRegs[pos]] = e.Lock
			}
			pos++
		}
	}
}

// pushFrame establishes an activation record: reserve the frame in stack
// memory, write the saved frame pointer and the return token into
// simulated memory, and seed parameter registers. Popped stack slots and
// their register files are reused (the backing array keeps them), so the
// steady-state call path allocates nothing once the deepest frame and
// widest register file have been seen.
func (v *VM) pushFrame(fn *ir.Func, args []uint64, retDst, retBase, retBound, retKey, retLock ir.Reg) error {
	if len(v.stack) >= v.maxDepth {
		return &Trap{Code: TrapStackOverflow, Cause: &RuntimeError{Msg: fmt.Sprintf(
			"stack depth limit (%d frames) exceeded in %s", v.maxDepth, fn.Name)}}
	}
	frameBytes := uint64(fn.FrameSize) + 16
	if v.sp < v.mem.stackBase+frameBytes {
		return &Trap{Code: TrapStackOverflow,
			Cause: &RuntimeError{Msg: "stack overflow in " + fn.Name}}
	}
	v.sp -= frameBytes
	fp := v.sp

	var callerFP uint64
	if len(v.stack) > 0 {
		callerFP = v.stack[len(v.stack)-1].fp
	}
	tok := RetTokenBase + v.nextTok*16
	v.nextTok++

	// Saved FP at fp+FrameSize, return token at fp+FrameSize+8 — above
	// the locals, so an upward overflow reaches them (x86 layout).
	if err := v.mem.WriteU64(fp+uint64(fn.FrameSize), callerFP); err != nil {
		return err
	}
	if err := v.mem.WriteU64(fp+uint64(fn.FrameSize)+8, tok); err != nil {
		return err
	}

	n := len(v.stack)
	if n < cap(v.stack) {
		v.stack = v.stack[:n+1]
	} else {
		v.stack = append(v.stack, frame{})
	}
	nf := &v.stack[n]
	regs := nf.regs // register file left behind by a popped frame
	if cap(regs) >= fn.NumRegs {
		regs = regs[:fn.NumRegs]
		clear(regs)
	} else {
		regs = make([]uint64, fn.NumRegs)
	}
	*nf = frame{
		fn:       fn,
		regs:     regs,
		fp:       fp,
		fpEff:    fp,
		retDst:   retDst,
		retBase:  retBase,
		retBound: retBound,
		retKey:   retKey,
		retLock:  retLock,
		token:    tok,
	}
	if v.prog != nil {
		nf.df = v.prog.funcs[fn]
	}
	if v.cprog != nil {
		nf.cf = v.cprog.funcs[fn]
	}
	for i, r := range fn.ParamRegs {
		if i < len(args) {
			regs[r] = args[i]
		}
	}
	if v.cfg.Temporal && fn.Temporal && len(fn.Allocas) > 0 {
		// Issue the frame lock: every alloca'd pointer in this frame
		// carries it, and popFrame revokes it — use-after-return dies at
		// the first dereference. Frames without allocas need no lock.
		key, lock := v.issueLock()
		nf.lock = lock
		regs[fn.FrameKeyReg] = key
		regs[fn.FrameLockReg] = lock
	}
	return nil
}

// popFrame validates the in-memory return token and unwinds, using the
// effective frame pointer like an x86 epilogue uses %rbp. A corrupted
// token pointing at a function is a successful control-flow hijack; a
// corrupted saved frame pointer redirects where the *caller's* epilogue
// will look for its own return slot (two-stage frame-pointer attack).
func (v *VM) popFrame() (*frame, error) {
	f := &v.stack[len(v.stack)-1]
	// Revoke the frame's temporal lock on every exit path — including
	// the hijack path below, where the victim frame is simply discarded:
	// pointers into this frame must never outlive it.
	if f.lock != 0 {
		v.revokeLock(f.lock)
		f.lock = 0
	}
	tokAddr := f.fpEff + uint64(f.fn.FrameSize) + 8
	tok, err := v.mem.ReadU64(tokAddr)
	if err != nil {
		return nil, err
	}
	savedFP, err := v.mem.ReadU64(f.fpEff + uint64(f.fn.FrameSize))
	if err != nil {
		return nil, err
	}
	frameBytes := uint64(f.fn.FrameSize) + 16

	if tok != f.token {
		if target := v.funcByAddr(tok); target != nil {
			// The attacker redirected the return: transfer control. The
			// victim's shadow window is discarded and the hijacked target
			// gets a fresh, empty one (a real transfer would push one too;
			// all its slots read as NULL bounds).
			v.Hijacks = append(v.Hijacks, ControlHijack{
				Via: "return-address", Target: target.Name,
			})
			wbase := f.shadowBase
			v.stack = v.stack[:len(v.stack)-1]
			v.sp += frameBytes
			v.shadow = v.shadow[:wbase]
			hb := v.pushShadow(0)
			if err := v.pushFrame(target, nil, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg); err != nil {
				return nil, err
			}
			v.stack[len(v.stack)-1].shadowBase = hb
			return nil, nil // control continues in the hijacked target
		}
		return nil, &RuntimeError{Msg: fmt.Sprintf(
			"return to corrupted address 0x%x in %s (smashed stack)", tok, f.fn.Name)}
	}
	v.stack = v.stack[:len(v.stack)-1]
	v.sp += frameBytes
	// Propagate a corrupted saved FP into the caller's epilogue.
	if len(v.stack) > 0 {
		caller := &v.stack[len(v.stack)-1]
		if savedFP != caller.fp && savedFP != caller.fpEff &&
			savedFP >= v.mem.stackBase && savedFP < StackTop {
			caller.fpEff = savedFP
			v.Hijacks = append(v.Hijacks, ControlHijack{
				Via: "frame-pointer", Target: caller.fn.Name,
			})
		}
	}
	return f, nil
}
