package vm

import (
	"context"
	"fmt"
	"io"

	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/metrics"
)

// CheckMode selects which accesses the instrumented program checks. The
// IR carries the checks; the mode also informs library wrappers.
type CheckMode int

// Check modes (paper §1: full checking vs store-only checking).
const (
	CheckNone CheckMode = iota
	CheckStoreOnly
	CheckFull
)

func (m CheckMode) String() string {
	return [...]string{"none", "store-only", "full"}[m]
}

// Checker is a runtime checking hook used by the object-based baseline
// tools (Jones–Kelly object table, Valgrind- and Mudflap-style checkers),
// which check uninstrumented programs at object granularity.
type Checker interface {
	Name() string
	OnAlloc(addr, size uint64, zone string)
	OnFree(addr uint64)
	OnLoad(addr, size uint64) error
	OnStore(addr, size uint64) error
}

// DefaultMaxStackDepth bounds activation records when Config.MaxStackDepth
// is zero. Stack-segment memory binds first under default sizes; the depth
// guard is the fail-closed backstop for tiny-frame recursion.
const DefaultMaxStackDepth = 1 << 20

// Config parameterizes a VM run.
type Config struct {
	Mode      CheckMode
	Meta      meta.Facility // nil selects a shadow space
	Checker   Checker       // optional baseline checker
	Stdout    io.Writer     // nil discards output
	StepLimit uint64        // max executed instructions (0 = default 4e9)
	HeapSize  uint64
	StackSize uint64
	Args      []string // argv for main
	// CheckCost overrides the modeled instruction cost of one spatial
	// check (default 3: two compares and a branch). Related-scheme
	// emulation (MSCC) uses heavier sequences.
	CheckCost uint64

	// HeapLimit caps live heap bytes; an allocation that would exceed it
	// traps with TrapOOM instead of returning NULL (0 = no cap). This is
	// distinct from HeapSize, which bounds the segment: segment exhaustion
	// keeps C semantics (malloc returns NULL).
	HeapLimit uint64
	// MaxStackDepth caps the number of live activation records; exceeding
	// it traps with TrapStackOverflow (0 = DefaultMaxStackDepth).
	MaxStackDepth int

	// PtrStoreFault, if set, is consulted after every committed
	// pointer-sized store with the slot address and the stored word; a
	// nonzero return value is XORed into the word (fault injection; see
	// internal/faults).
	PtrStoreFault func(addr, val uint64) uint64
	// AllocFault, if set, is consulted before every heap allocation;
	// returning false forces that allocation to fail as if out of memory
	// (malloc returns NULL).
	AllocFault func(size uint64) bool
}

// SpatialViolation is a bounds-check failure: SoftBound aborts the
// program (paper §3.1 check()).
type SpatialViolation struct {
	Kind  ir.CheckKind
	Ptr   uint64
	Base  uint64
	Bound uint64
	Size  uint64
	Func  string
}

func (e *SpatialViolation) Error() string {
	return fmt.Sprintf("softbound: spatial violation (%s) in %s: ptr=0x%x size=%d not within [0x%x,0x%x)",
		e.Kind, e.Func, e.Ptr, e.Size, e.Base, e.Bound)
}

// BaselineViolation is a violation reported by a baseline Checker.
type BaselineViolation struct {
	Tool string
	Msg  string
}

func (e *BaselineViolation) Error() string { return e.Tool + ": " + e.Msg }

// ControlHijack is recorded when corrupted control data (return token,
// function pointer used via ret, or longjmp buffer) transferred control
// somewhere a legitimate execution never would. The VM continues running
// at the hijacked target — the attack has succeeded.
type ControlHijack struct {
	Via    string // "return-address", "longjmp", "frame-pointer"
	Target string // function name reached
}

// RuntimeError is any other execution error (wild jump, division by zero,
// step limit, stack overflow).
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return e.Msg }

// frame is one activation record. Register contents are Go-side (they
// model machine registers); fp points at the frame's memory block, which
// holds allocas plus saved fp and the return token.
type frame struct {
	fn   *ir.Func
	regs []uint64
	fp   uint64
	// fpEff is the frame pointer used to locate the saved-FP/return
	// slots at return time. Normally equal to fp; a corrupted saved
	// frame pointer in a callee redirects it (the classic two-stage
	// old-base-pointer attack).
	fpEff uint64
	block int
	ip    int
	// retDst is the caller register receiving the return value.
	retDst            ir.Reg
	retBase, retBound ir.Reg
	token             uint64 // the return token written at call time

	// Variadic support (paper §5.2): arguments beyond the fixed
	// parameters, with their metadata, plus the va_arg cursor. The
	// SoftBound vararg convention passes the argument count and pointer
	// count so decoding can be checked; here both are implied by the
	// slice lengths, and the checked builtins enforce them.
	varargs  []uint64
	varMetas []meta.Entry
	vaCursor int
}

// jmpCheckpoint is a setjmp capture.
type jmpCheckpoint struct {
	depth  int
	block  int
	ip     int // index of the setjmp call instruction
	retDst ir.Reg
}

// VM executes a linked module.
//
// Isolation contract: a VM owns all of its mutable state (memory,
// allocator, stack, metadata facility, statistics) and treats the module
// as read-only, and the package keeps no mutable globals — so distinct
// VMs may run concurrently, even over the same module, without
// synchronization. The parallel benchmark harness depends on this;
// isolation_test.go holds it under the race detector.
type VM struct {
	mod   *ir.Module
	mem   *Mem
	alloc *heapAllocator
	cfg   Config
	fac   meta.Facility
	stats metrics.Stats

	globalAddrs map[string]uint64
	globalSizes map[string]uint64
	funcs       []*ir.Func
	funcAddrs   map[string]uint64

	stack   []frame
	sp      uint64
	nextTok uint64

	jmpPoints map[uint64]*jmpCheckpoint
	jmpSPs    map[uint64]uint64
	nextJmp   uint64

	rngState uint64

	// Hijacks records successful control-flow attacks (empty in healthy
	// runs). Table 3 asserts on these.
	Hijacks []ControlHijack

	stdout   io.Writer
	halted   bool
	exitCode int64
	steps    uint64
	limit    uint64

	// ctx carries the wall-clock deadline during RunContext /
	// CallFunctionContext; the step loop polls it periodically.
	ctx      context.Context
	maxDepth int
	allocs   uint64 // heap allocations performed (fault-injection event count)
}

// New builds a VM for the module. The module must already be linked and,
// if desired, instrumented.
func New(mod *ir.Module, cfg Config) (*VM, error) {
	fac := cfg.Meta
	if fac == nil {
		fac = meta.NewShadowSpace()
	}
	v := &VM{
		mod:         mod,
		cfg:         cfg,
		fac:         fac,
		globalAddrs: make(map[string]uint64),
		globalSizes: make(map[string]uint64),
		funcAddrs:   make(map[string]uint64),
		jmpPoints:   make(map[uint64]*jmpCheckpoint),
		jmpSPs:      make(map[uint64]uint64),
		rngState:    0x9e3779b97f4a7c15,
		stdout:      cfg.Stdout,
		limit:       cfg.StepLimit,
	}
	if v.stdout == nil {
		v.stdout = io.Discard
	}
	if v.limit == 0 {
		v.limit = 4_000_000_000
	}
	if v.cfg.CheckCost == 0 {
		v.cfg.CheckCost = costCheck
	}
	v.maxDepth = cfg.MaxStackDepth
	if v.maxDepth == 0 {
		v.maxDepth = DefaultMaxStackDepth
	}

	// Lay out globals.
	var off uint64
	for _, g := range mod.Globals {
		align := uint64(g.Align)
		if align == 0 {
			align = 8
		}
		off = (off + align - 1) &^ (align - 1)
		v.globalAddrs[g.Name] = GlobalBase + off
		v.globalSizes[g.Name] = uint64(g.Size)
		off += uint64(g.Size)
	}
	v.mem = NewMem(off, cfg.HeapSize, cfg.StackSize)
	v.alloc = newHeapAllocator(v.mem.heapEnd)
	v.sp = StackTop

	// Function addresses.
	for i, f := range mod.Funcs {
		v.funcs = append(v.funcs, f)
		v.funcAddrs[f.Name] = FuncBase + uint64(i)*FuncSlot
		_ = i
	}

	// Initialize global contents and relocations.
	for _, g := range mod.Globals {
		addr := v.globalAddrs[g.Name]
		if len(g.Init) > 0 {
			if err := v.mem.WriteBytes(addr, g.Init); err != nil {
				return nil, err
			}
		}
		if v.cfg.Checker != nil {
			v.cfg.Checker.OnAlloc(addr, uint64(g.Size), "global")
		}
	}
	for _, g := range mod.Globals {
		addr := v.globalAddrs[g.Name]
		for _, pi := range g.PtrInits {
			var target uint64
			var base, bound uint64
			if pi.Func != "" {
				target = v.funcAddrs[pi.Func]
				base, bound = target, target // function-pointer encoding
				if target == 0 {
					return nil, fmt.Errorf("vm: undefined function %q in initializer of %q", pi.Func, g.Name)
				}
			} else {
				t, ok := v.globalAddrs[pi.Sym]
				if !ok {
					return nil, fmt.Errorf("vm: undefined global %q in initializer of %q", pi.Sym, g.Name)
				}
				target = t + uint64(pi.Addend)
				base = t
				bound = t + v.globalSizes[pi.Sym]
			}
			if err := v.mem.WriteU64(addr+uint64(pi.Offset), target); err != nil {
				return nil, err
			}
			// Seed metadata for statically initialized pointers
			// (paper §5.2 "global variables": SoftBound emits
			// constructor code to do this).
			v.fac.Update(addr+uint64(pi.Offset), meta.Entry{Base: base, Bound: bound})
		}
	}
	return v, nil
}

// Stats returns the accumulated execution statistics.
func (v *VM) Stats() *metrics.Stats {
	v.stats.MetaBytes = v.fac.Footprint()
	v.stats.MaxHeap = v.alloc.maxInUse
	return &v.stats
}

// Mem exposes the memory (tests inspect corruption effects).
func (v *VM) Mem() *Mem { return v.mem }

// GlobalAddr returns the simulated address of a global, 0 if absent.
func (v *VM) GlobalAddr(name string) uint64 { return v.globalAddrs[name] }

// FuncAddr returns the simulated address of a function, 0 if absent.
func (v *VM) FuncAddr(name string) uint64 { return v.funcAddrs[name] }

// ExitCode returns the program's exit status after Run.
func (v *VM) ExitCode() int64 { return v.exitCode }

// funcByAddr resolves a function-segment address.
func (v *VM) funcByAddr(addr uint64) *ir.Func {
	if addr < FuncBase {
		return nil
	}
	idx := (addr - FuncBase) / FuncSlot
	if (addr-FuncBase)%FuncSlot != 0 || idx >= uint64(len(v.funcs)) {
		return nil
	}
	return v.funcs[idx]
}

// Run executes main (argc/argv are synthesized from cfg.Args) and returns
// the program's exit code. Every non-nil error is a *Trap (possibly
// wrapped with the faulting site).
func (v *VM) Run() (int64, error) {
	return v.RunContext(context.Background())
}

// RunContext is Run under a wall-clock deadline: when ctx expires the VM
// traps with TrapDeadline at the next step-loop poll instead of running
// to its step budget.
func (v *VM) RunContext(ctx context.Context) (int64, error) {
	code, err := v.run(ctx)
	return code, Classify(err)
}

func (v *VM) run(ctx context.Context) (int64, error) {
	v.ctx = ctx
	entry := "main"
	if v.mod.Lookup("main") == nil {
		return -1, &RuntimeError{Msg: "vm: no main function"}
	}
	mainFn := v.mod.Lookup(entry)

	// Build argv in heap memory.
	args := append([]string{"prog"}, v.cfg.Args...)
	argvAddr, err := v.allocate(uint64(8 * len(args)))
	if err != nil {
		return -1, err
	}
	for i, a := range args {
		sAddr, err := v.allocate(uint64(len(a) + 1))
		if err != nil {
			return -1, err
		}
		if err := v.mem.WriteBytes(sAddr, append([]byte(a), 0)); err != nil {
			return -1, err
		}
		if err := v.mem.WriteU64(argvAddr+uint64(8*i), sAddr); err != nil {
			return -1, err
		}
		v.fac.Update(argvAddr+uint64(8*i), meta.Entry{Base: sAddr, Bound: sAddr + uint64(len(a)+1)})
	}

	callArgs := []uint64{uint64(len(args)), argvAddr}
	callMeta := []meta.Entry{{}, {Base: argvAddr, Bound: argvAddr + uint64(8*len(args))}}
	if mainFn.OrigParams < len(callArgs) {
		callArgs = callArgs[:mainFn.OrigParams]
		callMeta = callMeta[:mainFn.OrigParams]
	}
	if mainFn.Transformed {
		for i := range callArgs {
			if i < mainFn.OrigParams && mainFn.Params[i].IsPtr {
				callArgs = append(callArgs, callMeta[i].Base, callMeta[i].Bound)
			}
		}
	}
	if err := v.pushFrame(mainFn, callArgs, callMeta, ir.NoReg, ir.NoReg, ir.NoReg); err != nil {
		return -1, err
	}
	if err := v.loop(); err != nil {
		return v.exitCode, err
	}
	return v.exitCode, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CallFunction invokes an arbitrary function with integer arguments (test
// and harness helper); the VM must be freshly constructed.
func (v *VM) CallFunction(name string, args ...uint64) (int64, error) {
	return v.CallFunctionContext(context.Background(), name, args...)
}

// CallFunctionContext is CallFunction under a wall-clock deadline.
func (v *VM) CallFunctionContext(ctx context.Context, name string, args ...uint64) (int64, error) {
	v.ctx = ctx
	fn := v.mod.Lookup(name)
	if fn == nil {
		return -1, Classify(&RuntimeError{Msg: "vm: no function " + name})
	}
	metas := make([]meta.Entry, len(args))
	if err := v.pushFrame(fn, args, metas, ir.NoReg, ir.NoReg, ir.NoReg); err != nil {
		return -1, Classify(err)
	}
	if err := v.loop(); err != nil {
		return v.exitCode, Classify(err)
	}
	return v.exitCode, nil
}

// allocate is the central heap-allocation path: it applies injected
// allocation faults and the configured heap cap before delegating to the
// allocator. Address 0 with a nil error is C-style exhaustion (malloc
// returns NULL); a non-nil error is the fail-closed TrapOOM from the
// heap cap.
func (v *VM) allocate(size uint64) (uint64, error) {
	v.allocs++
	if v.cfg.AllocFault != nil && !v.cfg.AllocFault(size) {
		return 0, nil
	}
	if v.cfg.HeapLimit != 0 && v.alloc.inUse+roundAlloc(size) > v.cfg.HeapLimit {
		return 0, &Trap{Code: TrapOOM, Cause: &RuntimeError{Msg: fmt.Sprintf(
			"heap cap exceeded: %d bytes live + %d requested > %d limit",
			v.alloc.inUse, size, v.cfg.HeapLimit)}}
	}
	return v.alloc.alloc(size), nil
}

// pushFrame establishes an activation record: reserve the frame in stack
// memory, write the saved frame pointer and the return token into
// simulated memory, and seed parameter registers.
func (v *VM) pushFrame(fn *ir.Func, args []uint64, metas []meta.Entry, retDst, retBase, retBound ir.Reg) error {
	if len(v.stack) >= v.maxDepth {
		return &Trap{Code: TrapStackOverflow, Cause: &RuntimeError{Msg: fmt.Sprintf(
			"stack depth limit (%d frames) exceeded in %s", v.maxDepth, fn.Name)}}
	}
	frameBytes := uint64(fn.FrameSize) + 16
	if v.sp < v.mem.stackBase+frameBytes {
		return &Trap{Code: TrapStackOverflow,
			Cause: &RuntimeError{Msg: "stack overflow in " + fn.Name}}
	}
	v.sp -= frameBytes
	fp := v.sp

	var callerFP uint64
	if len(v.stack) > 0 {
		callerFP = v.stack[len(v.stack)-1].fp
	}
	tok := RetTokenBase + v.nextTok*16
	v.nextTok++

	// Saved FP at fp+FrameSize, return token at fp+FrameSize+8 — above
	// the locals, so an upward overflow reaches them (x86 layout).
	if err := v.mem.WriteU64(fp+uint64(fn.FrameSize), callerFP); err != nil {
		return err
	}
	if err := v.mem.WriteU64(fp+uint64(fn.FrameSize)+8, tok); err != nil {
		return err
	}

	f := frame{
		fn:       fn,
		regs:     make([]uint64, fn.NumRegs),
		fp:       fp,
		fpEff:    fp,
		retDst:   retDst,
		retBase:  retBase,
		retBound: retBound,
		token:    tok,
	}
	for i, r := range fn.ParamRegs {
		if i < len(args) {
			f.regs[r] = args[i]
		}
	}
	v.stack = append(v.stack, f)
	return nil
}

// popFrame validates the in-memory return token and unwinds, using the
// effective frame pointer like an x86 epilogue uses %rbp. A corrupted
// token pointing at a function is a successful control-flow hijack; a
// corrupted saved frame pointer redirects where the *caller's* epilogue
// will look for its own return slot (two-stage frame-pointer attack).
func (v *VM) popFrame() (*frame, error) {
	f := &v.stack[len(v.stack)-1]
	tokAddr := f.fpEff + uint64(f.fn.FrameSize) + 8
	tok, err := v.mem.ReadU64(tokAddr)
	if err != nil {
		return nil, err
	}
	savedFP, err := v.mem.ReadU64(f.fpEff + uint64(f.fn.FrameSize))
	if err != nil {
		return nil, err
	}
	frameBytes := uint64(f.fn.FrameSize) + 16

	if tok != f.token {
		if target := v.funcByAddr(tok); target != nil {
			// The attacker redirected the return: transfer control.
			v.Hijacks = append(v.Hijacks, ControlHijack{
				Via: "return-address", Target: target.Name,
			})
			v.stack = v.stack[:len(v.stack)-1]
			v.sp += frameBytes
			metas := make([]meta.Entry, len(target.Params))
			if err := v.pushFrame(target, nil, metas, ir.NoReg, ir.NoReg, ir.NoReg); err != nil {
				return nil, err
			}
			return nil, nil // control continues in the hijacked target
		}
		return nil, &RuntimeError{Msg: fmt.Sprintf(
			"return to corrupted address 0x%x in %s (smashed stack)", tok, f.fn.Name)}
	}
	v.stack = v.stack[:len(v.stack)-1]
	v.sp += frameBytes
	// Propagate a corrupted saved FP into the caller's epilogue.
	if len(v.stack) > 0 {
		caller := &v.stack[len(v.stack)-1]
		if savedFP != caller.fp && savedFP != caller.fpEff &&
			savedFP >= v.mem.stackBase && savedFP < StackTop {
			caller.fpEff = savedFP
			v.Hijacks = append(v.Hijacks, ControlHijack{
				Via: "frame-pointer", Target: caller.fn.Name,
			})
		}
	}
	return f, nil
}
