package vm

import (
	"math"

	"softbound/internal/ir"
)

// This file implements the fast engine's decode stage: each *ir.Func is
// flattened once into a dense []dinst. Block targets become flat
// instruction indices, operands are pre-resolved (register number vs.
// immediate — global and function addresses are a deterministic function
// of the module, so symbol operands become plain constants), direct call
// targets are bound to their decoded bodies, and the hot adjacent
// patterns the SoftBound instrumentation emits are fused into
// superinstructions:
//
//	GEP+Check+Load   → dGEPCheckLoad
//	GEP+Check+Store  → dGEPCheckStore
//	Check+MetaLoad   → dCheckMetaLoad
//
// Fusion never changes semantics: the fused handlers execute the
// component operations in exactly the reference order, with per-component
// statistics and step accounting, so a trap inside a superinstruction
// (bounds violation, step limit) is indistinguishable from the reference
// engine's. Every control-flow resume point (block starts, the
// instruction after a call) falls on a decoded-instruction boundary
// because terminators and calls are never fused into.
//
// The decoded program is immutable after construction and cached on the
// *ir.Module (ir.Module.Decoded), so concurrent VMs — the serve compile
// cache, the parallel bench harness — share one decode.

// layoutGlobals computes the deterministic global layout: align-rounded
// offsets from GlobalBase, in declaration order. It fills addrs (and
// sizes, when non-nil) and returns the total data-segment extent.
func layoutGlobals(mod *ir.Module, addrs, sizes map[string]uint64) uint64 {
	var off uint64
	for _, g := range mod.Globals {
		align := uint64(g.Align)
		if align == 0 {
			align = 8
		}
		off = (off + align - 1) &^ (align - 1)
		addrs[g.Name] = GlobalBase + off
		if sizes != nil {
			sizes[g.Name] = uint64(g.Size)
		}
		off += uint64(g.Size)
	}
	return off
}

// layoutFuncs assigns the deterministic function-segment addresses.
func layoutFuncs(mod *ir.Module, addrs map[string]uint64) {
	for i, f := range mod.Funcs {
		addrs[f.Name] = FuncBase + uint64(i)*FuncSlot
	}
}

// dOp discriminates decoded instructions.
type dOp uint8

// Decoded operations. dConst..dUnreachable map 1:1 onto InstKinds (with
// const/reg specialization); the last three are superinstructions.
const (
	dBad dOp = iota // malformed instruction or operand: typed RuntimeError
	dFellOff
	dConst // dst = immediate
	dMov   // dst = register
	dAdd   // 64-bit wrapping add (width 0/64; signedness immaterial)
	dSub
	dMul
	dBin // generic KBin via src
	dUn
	dCmp
	dConv
	dAlloca
	dLoad
	dStore
	dGEP
	dCheck
	dCheckCall
	dMetaLoad
	dMetaStore
	dMetaClear
	dBr
	dCondBr
	dCall
	dRet
	dUnreachable

	dGEPCheckLoad
	dGEPCheckStore
	dCheckMetaLoad
)

// dOperand is a pre-resolved operand: a register number, or (reg ==
// NoReg) an immediate. Constants, global addresses, and function
// addresses all collapse to immediates at decode time.
type dOperand struct {
	reg ir.Reg
	imm uint64
}

// get reads the operand against a register file.
func (o dOperand) get(regs []uint64) uint64 {
	if o.reg >= 0 {
		return regs[o.reg]
	}
	return o.imm
}

// dinst is one decoded instruction. The field set is the union of what
// the handlers need; src keeps the originating ir.Inst for cold fields
// (call argument metadata, conversion specs) and diagnostics, and blk/ip
// keep the source position for error wrapping.
type dinst struct {
	op     dOp
	nsteps uint8 // simulated steps this instruction retires (fused: per component)
	mem    ir.MemType
	checkK ir.CheckKind

	dst, dst2 ir.Reg
	a, b      dOperand
	base, bnd dOperand // check bounds
	size, off int64    // GEP scale and constant offset; alloca size
	asize     uint64   // check access size

	// Temporal (CETS) operands, meaningful only under the flags: tmeta
	// gates key/lock (the check's lock-and-key pair, or a metastore's
	// source identity), and dst3 != NoReg gates the metaload key/lock
	// destinations. The flags are required — a zero dOperand or zero Reg
	// would otherwise read register 0, which is a valid register.
	tmeta      bool
	key, lock  dOperand
	dst3, dst4 ir.Reg

	target, elseT int32 // branch targets as flat indices (post-patch)

	callee *dfunc     // direct user-function call target
	args   []dOperand // pre-resolved call arguments
	shadow []dshadow  // pre-resolved shadow-window slots (KCall)

	src     *ir.Inst
	blk, ip int32
}

// dshadow is a pre-resolved shadow-stack slot of a call: the (base,
// bound) operands destined for window slot 1+arg, plus — under temporal
// instrumentation (tmeta) — the slot's (key, lock) operands.
type dshadow struct {
	arg       int32
	base, bnd dOperand
	tmeta     bool
	key, lock dOperand
}

// dfunc is a decoded function body.
type dfunc struct {
	fn         *ir.Func
	code       []dinst
	blockStart []int32
}

// program is a decoded module.
type program struct {
	funcs map[*ir.Func]*dfunc
}

// decoder carries the module-wide resolution context.
type decoder struct {
	globals   map[string]uint64
	funcAddrs map[string]uint64
	mod       *ir.Module
	prog      *program
	cur       *ir.Func // function being decoded (branch-target validation)
}

// decodeModule flattens every function of the module. It is pure with
// respect to the module (all addresses are recomputed from the layout
// helpers), so the result is shareable across VMs.
func decodeModule(mod *ir.Module) *program {
	dec := &decoder{
		globals:   make(map[string]uint64),
		funcAddrs: make(map[string]uint64),
		mod:       mod,
		prog:      &program{funcs: make(map[*ir.Func]*dfunc, len(mod.Funcs))},
	}
	layoutGlobals(mod, dec.globals, nil)
	layoutFuncs(mod, dec.funcAddrs)
	// Shells first, so direct-call operands can bind callees that appear
	// later (or recursively).
	for _, fn := range mod.Funcs {
		dec.prog.funcs[fn] = &dfunc{fn: fn}
	}
	for _, fn := range mod.Funcs {
		dec.decodeFunc(fn, dec.prog.funcs[fn])
	}
	return dec.prog
}

// operand pre-resolves an ir.Value; ok is false for a malformed kind.
func (dec *decoder) operand(val ir.Value) (dOperand, bool) {
	switch val.Kind {
	case ir.VReg:
		return dOperand{reg: val.Reg}, true
	case ir.VConstInt:
		return dOperand{reg: ir.NoReg, imm: uint64(val.Int)}, true
	case ir.VConstFloat:
		return dOperand{reg: ir.NoReg, imm: math.Float64bits(val.Float)}, true
	case ir.VGlobal:
		return dOperand{reg: ir.NoReg, imm: dec.globals[val.Sym] + uint64(val.Off)}, true
	case ir.VFunc:
		return dOperand{reg: ir.NoReg, imm: dec.funcAddrs[val.Sym]}, true
	}
	return dOperand{reg: ir.NoReg}, false
}

func isTerminator(k ir.InstKind) bool {
	switch k {
	case ir.KRet, ir.KBr, ir.KCondBr, ir.KUnreachable:
		return true
	}
	return false
}

func (dec *decoder) decodeFunc(fn *ir.Func, df *dfunc) {
	dec.cur = fn
	df.blockStart = make([]int32, len(fn.Blocks))
	var code []dinst
	for bi, blk := range fn.Blocks {
		df.blockStart[bi] = int32(len(code))
		insts := blk.Insts
		for i := 0; i < len(insts); i++ {
			in := &insts[i]

			// Superinstruction fusion. Conditions are structural (the
			// check guards the GEP result, the access goes through it),
			// which is exactly the shape the instrumentation emits.
			if in.Kind == ir.KGEP && i+2 < len(insts) {
				chk, acc := &insts[i+1], &insts[i+2]
				if chk.Kind == ir.KCheck && chk.CheckK != ir.CheckCall &&
					chk.A.IsReg() && chk.A.Reg == in.Dst &&
					(acc.Kind == ir.KLoad || acc.Kind == ir.KStore) &&
					acc.A.IsReg() && acc.A.Reg == in.Dst {
					if d, ok := dec.fuseGEPCheckAccess(in, chk, acc, bi, i); ok {
						code = append(code, d)
						i += 2
						continue
					}
				}
			}
			if in.Kind == ir.KCheck && in.CheckK != ir.CheckCall && i+1 < len(insts) {
				if ml := &insts[i+1]; ml.Kind == ir.KMetaLoad {
					if d, ok := dec.fuseCheckMetaLoad(in, ml, bi, i); ok {
						code = append(code, d)
						i++
						continue
					}
				}
			}

			code = append(code, dec.decodeInst(in, bi, i))
		}
		if len(insts) == 0 || !isTerminator(insts[len(insts)-1].Kind) {
			// The reference engine reports "fell off block" when ip runs
			// past the last instruction; a sentinel keeps the decoded
			// stream from sliding into the next block.
			code = append(code, dinst{op: dFellOff, nsteps: 1,
				blk: int32(bi), ip: int32(len(insts))})
		}
	}
	// Branch targets were recorded as block indices; patch them to flat
	// instruction indices now that every block start is known.
	for i := range code {
		switch code[i].op {
		case dBr:
			code[i].target = df.blockStart[code[i].target]
		case dCondBr:
			code[i].target = df.blockStart[code[i].target]
			code[i].elseT = df.blockStart[code[i].elseT]
		}
	}
	df.code = code
}

// decodeInst translates one instruction; any malformed piece degrades to
// dBad, which traps with a typed RuntimeError if ever executed.
func (dec *decoder) decodeInst(in *ir.Inst, bi, ii int) dinst {
	d := dinst{nsteps: 1, src: in, blk: int32(bi), ip: int32(ii)}
	bad := func() dinst {
		d.op = dBad
		return d
	}
	switch in.Kind {
	case ir.KConst, ir.KMov:
		a, ok := dec.operand(in.A)
		if !ok {
			return bad()
		}
		d.a, d.dst = a, in.Dst
		if a.reg >= 0 {
			d.op = dMov
		} else {
			d.op = dConst
		}

	case ir.KBin:
		a, okA := dec.operand(in.A)
		b, okB := dec.operand(in.B)
		if !okA || !okB {
			return bad()
		}
		d.a, d.b, d.dst = a, b, in.Dst
		// Full-width adds/subs/muls (the address arithmetic workhorses)
		// skip the generic width/sign dispatch: wrapInt is the identity
		// at width 0/64 regardless of signedness.
		if in.IntWidth == 0 || in.IntWidth == 64 {
			switch in.Op {
			case ir.OpAdd:
				d.op = dAdd
				return d
			case ir.OpSub:
				d.op = dSub
				return d
			case ir.OpMul:
				d.op = dMul
				return d
			}
		}
		d.op = dBin

	case ir.KUn:
		a, ok := dec.operand(in.A)
		if !ok {
			return bad()
		}
		d.op, d.a, d.dst = dUn, a, in.Dst

	case ir.KCmp:
		a, okA := dec.operand(in.A)
		b, okB := dec.operand(in.B)
		if !okA || !okB {
			return bad()
		}
		d.op, d.a, d.b, d.dst = dCmp, a, b, in.Dst

	case ir.KConv:
		a, ok := dec.operand(in.A)
		if !ok {
			return bad()
		}
		d.op, d.a, d.dst = dConv, a, in.Dst

	case ir.KAlloca:
		d.op, d.dst = dAlloca, in.Dst
		d.off = in.C.Int
		d.size = in.Size

	case ir.KLoad:
		a, ok := dec.operand(in.A)
		if !ok {
			return bad()
		}
		d.op, d.a, d.dst, d.mem = dLoad, a, in.Dst, in.Mem

	case ir.KStore:
		a, okA := dec.operand(in.A)
		b, okB := dec.operand(in.B)
		if !okA || !okB {
			return bad()
		}
		d.op, d.a, d.b, d.mem = dStore, a, b, in.Mem

	case ir.KGEP:
		a, okA := dec.operand(in.A)
		b, okB := dec.operand(in.B)
		if !okA || !okB {
			return bad()
		}
		d.op, d.a, d.b, d.dst = dGEP, a, b, in.Dst
		d.size, d.off = in.Size, in.C.Int

	case ir.KCheck:
		a, okA := dec.operand(in.A)
		base, okB := dec.operand(in.Base)
		bnd, okC := dec.operand(in.Bound)
		if !okA || !okB || !okC {
			return bad()
		}
		d.a, d.base, d.bnd = a, base, bnd
		d.checkK = in.CheckK
		if in.CheckK == ir.CheckCall {
			d.op = dCheckCall
		} else {
			d.op = dCheck
			d.asize = uint64(in.AccessSize)
			if in.TMeta {
				key, okK := dec.operand(in.Key)
				lock, okL := dec.operand(in.Lock)
				if !okK || !okL {
					return bad()
				}
				d.tmeta, d.key, d.lock = true, key, lock
			}
		}

	case ir.KMetaLoad:
		a, ok := dec.operand(in.A)
		if !ok {
			return bad()
		}
		d.op, d.a = dMetaLoad, a
		d.dst, d.dst2 = in.DstBaseR, in.DstBndR
		d.dst3, d.dst4 = ir.NoReg, ir.NoReg
		if in.TMeta {
			d.dst3, d.dst4 = in.DstKeyR, in.DstLockR
		}

	case ir.KMetaStore:
		a, okA := dec.operand(in.A)
		base, okB := dec.operand(in.SrcBase)
		bnd, okC := dec.operand(in.SrcBound)
		if !okA || !okB || !okC {
			return bad()
		}
		d.op, d.a, d.base, d.bnd = dMetaStore, a, base, bnd
		if in.TMeta {
			key, okK := dec.operand(in.SrcKey)
			lock, okL := dec.operand(in.SrcLock)
			if !okK || !okL {
				return bad()
			}
			d.tmeta, d.key, d.lock = true, key, lock
		}

	case ir.KMetaClear:
		a, okA := dec.operand(in.A)
		b, okB := dec.operand(in.MemSize)
		if !okA || !okB {
			return bad()
		}
		d.op, d.a, d.b = dMetaClear, a, b

	case ir.KBr:
		if in.Target < 0 || in.Target >= len(dec.curBlocks()) {
			return bad()
		}
		d.op, d.target = dBr, int32(in.Target)

	case ir.KCondBr:
		a, ok := dec.operand(in.A)
		if !ok || in.Target < 0 || in.Target >= len(dec.curBlocks()) ||
			in.Else < 0 || in.Else >= len(dec.curBlocks()) {
			return bad()
		}
		d.op, d.a = dCondBr, a
		d.target, d.elseT = int32(in.Target), int32(in.Else)

	case ir.KCall:
		d.op = dCall
		d.args = make([]dOperand, len(in.Args))
		for i, a := range in.Args {
			op, ok := dec.operand(a)
			if !ok {
				return bad()
			}
			d.args[i] = op
		}
		if len(in.Shadow) > 0 {
			d.shadow = make([]dshadow, len(in.Shadow))
			for i, s := range in.Shadow {
				base, okB := dec.operand(s.Base)
				bnd, okE := dec.operand(s.Bound)
				if !okB || !okE {
					return bad()
				}
				ds := dshadow{arg: int32(s.Arg), base: base, bnd: bnd}
				if s.Temporal {
					key, okK := dec.operand(s.Key)
					lock, okL := dec.operand(s.Lock)
					if !okK || !okL {
						return bad()
					}
					ds.tmeta, ds.key, ds.lock = true, key, lock
				}
				d.shadow[i] = ds
			}
		}
		switch in.Callee.Kind {
		case ir.VFunc:
			if fn := dec.mod.Lookup(in.Callee.Sym); fn != nil {
				d.callee = dec.prog.funcs[fn]
			}
		case ir.VReg:
			// Indirect: resolved per call through the register.
		default:
			return bad()
		}

	case ir.KRet:
		d.op = dRet

	case ir.KUnreachable:
		d.op = dUnreachable

	default:
		return bad()
	}
	return d
}

// curBlocks returns the block slice of the function being decoded.
func (dec *decoder) curBlocks() []*ir.Block { return dec.cur.Blocks }

func (dec *decoder) fuseGEPCheckAccess(gep, chk, acc *ir.Inst, bi, ii int) (dinst, bool) {
	a, okA := dec.operand(gep.A)
	b, okB := dec.operand(gep.B)
	base, okC := dec.operand(chk.Base)
	bnd, okD := dec.operand(chk.Bound)
	if !okA || !okB || !okC || !okD {
		return dinst{}, false
	}
	d := dinst{
		nsteps: 3,
		src:    gep, blk: int32(bi), ip: int32(ii),
		a: a, b: b, dst: gep.Dst,
		size: gep.Size, off: gep.C.Int,
		base: base, bnd: bnd, asize: uint64(chk.AccessSize), checkK: chk.CheckK,
		mem: acc.Mem,
	}
	if chk.TMeta {
		key, okK := dec.operand(chk.Key)
		lock, okL := dec.operand(chk.Lock)
		if !okK || !okL {
			return dinst{}, false
		}
		d.tmeta, d.key, d.lock = true, key, lock
	}
	if acc.Kind == ir.KLoad {
		d.op = dGEPCheckLoad
		d.dst2 = acc.Dst
	} else {
		val, ok := dec.operand(acc.B)
		if !ok {
			return dinst{}, false
		}
		d.op = dGEPCheckStore
		// The store-value operand rides in args (unused by non-call ops).
		d.args = []dOperand{val}
	}
	return d, true
}

func (dec *decoder) fuseCheckMetaLoad(chk, ml *ir.Inst, bi, ii int) (dinst, bool) {
	a, okA := dec.operand(chk.A)
	base, okB := dec.operand(chk.Base)
	bnd, okC := dec.operand(chk.Bound)
	addr, okD := dec.operand(ml.A)
	if !okA || !okB || !okC || !okD {
		return dinst{}, false
	}
	d := dinst{
		op: dCheckMetaLoad, nsteps: 2,
		src: chk, blk: int32(bi), ip: int32(ii),
		a: a, base: base, bnd: bnd, asize: uint64(chk.AccessSize), checkK: chk.CheckK,
		b:   addr,
		dst: ml.DstBaseR, dst2: ml.DstBndR,
		dst3: ir.NoReg, dst4: ir.NoReg,
	}
	if chk.TMeta {
		key, okK := dec.operand(chk.Key)
		lock, okL := dec.operand(chk.Lock)
		if !okK || !okL {
			return dinst{}, false
		}
		d.tmeta, d.key, d.lock = true, key, lock
	}
	if ml.TMeta {
		d.dst3, d.dst4 = ml.DstKeyR, ml.DstLockR
	}
	return d, true
}
