package vm

import (
	"fmt"
	"math"
	"strings"

	"softbound/internal/ir"
	"softbound/internal/meta"
)

// callBuiltin implements the runtime library functions that are not
// written in the C subset (allocation, raw memory ops, I/O, math,
// setjmp/longjmp). These correspond to the paper's library wrappers
// (§5.2): each is metadata-aware, checking pointer arguments against the
// caller-provided base/bound when checking is enabled and producing
// metadata for returned pointers.
func (v *VM) callBuiltin(name string, f *frame, in *ir.Inst, args []uint64, metas []meta.Entry) (uint64, meta.Entry, error) {
	instrumented := v.cfg.Mode != CheckNone

	arg := func(i int) uint64 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	farg := func(i int) float64 { return math.Float64frombits(arg(i)) }
	fret := func(x float64) (uint64, meta.Entry, error) {
		return math.Float64bits(x), meta.Entry{}, nil
	}
	// checkArg validates a pointer argument of the given length against
	// its metadata, as the paper's wrappers do.
	checkArg := func(i int, size uint64, isWrite bool) error {
		if !instrumented || i >= len(metas) {
			return nil
		}
		if v.cfg.Mode == CheckStoreOnly && !isWrite {
			return nil
		}
		m := metas[i]
		if m == (meta.Entry{}) {
			// No metadata flowed here (e.g. vararg int reinterpreted);
			// the paper's wrappers cannot check such pointers.
			return nil
		}
		p := arg(i)
		v.stats.Checks++
		v.stats.SimInsts += v.cfg.CheckCost
		k := ir.CheckLoad
		if isWrite {
			k = ir.CheckStore
		}
		if v.cfg.Temporal {
			// Library wrappers verify the lock-and-key before the spatial
			// compare, like instrumented dereferences do.
			v.stats.TemporalChecks++
			v.stats.SimInsts += costTemporalCheck
			if !v.lockLive(m.Key, m.Lock) {
				return &TemporalViolation{Kind: k, Ptr: p, Key: m.Key,
					Lock: m.Lock, Func: name}
			}
		}
		if p < m.Base || p+size > m.Bound {
			return &SpatialViolation{Kind: k, Ptr: p, Base: m.Base,
				Bound: m.Bound, Size: size, Func: name}
		}
		return nil
	}

	// heapEntry builds the returned metadata for a fresh heap block of
	// [p, p+size): under the temporal runtime the block gets a fresh
	// (key, lock), revoked when free/realloc retires the block.
	heapEntry := func(p, size uint64) meta.Entry {
		e := meta.Entry{Base: p, Bound: p + size}
		if v.cfg.Temporal {
			key, lock := v.issueLock()
			v.heapLocks[p] = lock
			e.Key, e.Lock = key, lock
		}
		return e
	}
	// revokeHeap kills the temporal lock of a retiring heap block.
	revokeHeap := func(p uint64) {
		if v.cfg.Temporal {
			if lock, ok := v.heapLocks[p]; ok {
				v.revokeLock(lock)
				delete(v.heapLocks, p)
			}
		}
	}

	switch name {
	// ------------------------------------------------------ allocation
	case "malloc":
		size := arg(0)
		v.stats.Mallocs++
		v.stats.SimInsts += 30
		p, err := v.allocate(size)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		if p == 0 {
			return 0, meta.Entry{}, nil
		}
		if v.cfg.Checker != nil {
			v.cfg.Checker.OnAlloc(p, size, "heap")
		}
		if instrumented {
			// Paper §5.2: clear stale metadata on reuse.
			v.fac.Clear(p, size)
		}
		// ptr_base = ptr; ptr_bound = ptr+size (paper §3.1).
		return p, heapEntry(p, size), nil

	case "calloc":
		n, esz := arg(0), arg(1)
		size := n * esz
		v.stats.Mallocs++
		v.stats.SimInsts += 30 + size/8
		p, err := v.allocate(size)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		if p == 0 {
			return 0, meta.Entry{}, nil
		}
		if b, err := v.mem.slice(p, size); err == nil {
			for i := range b {
				b[i] = 0
			}
		}
		if v.cfg.Checker != nil {
			v.cfg.Checker.OnAlloc(p, size, "heap")
		}
		if instrumented {
			v.fac.Clear(p, size)
		}
		return p, heapEntry(p, size), nil

	case "realloc":
		old, size := arg(0), arg(1)
		v.stats.Mallocs++
		v.stats.SimInsts += 40
		if old == 0 {
			p, err := v.allocate(size)
			if err != nil {
				return 0, meta.Entry{}, err
			}
			if p != 0 && v.cfg.Checker != nil {
				v.cfg.Checker.OnAlloc(p, size, "heap")
			}
			if p != 0 && instrumented {
				v.fac.Clear(p, size)
			}
			return p, heapEntry(p, size), nil
		}
		// Temporal pre-check on the old pointer: realloc of a block whose
		// lock is already revoked (freed, or realloc'd before) is a
		// temporal violation, just like free of one.
		if v.cfg.Temporal && instrumented && len(metas) > 0 && metas[0] != (meta.Entry{}) {
			v.stats.TemporalChecks++
			v.stats.SimInsts += costTemporalCheck
			if !v.lockLive(metas[0].Key, metas[0].Lock) {
				return 0, meta.Entry{}, &TemporalViolation{Kind: ir.CheckStore,
					Ptr: old, Key: metas[0].Key, Lock: metas[0].Lock, Func: name}
			}
		}
		oldSize := v.alloc.size(old)
		p, err := v.allocate(size)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		if p == 0 {
			return 0, meta.Entry{}, nil
		}
		n := oldSize
		if size < n {
			n = size
		}
		// Propagate copy faults instead of silently returning a
		// half-initialized block with full bounds: a realloc that cannot
		// read the old contents (or write the new block) is a memory
		// fault, surfaced as a typed trap.
		if n > 0 {
			src, err := v.mem.ReadBytes(old, n)
			if err != nil {
				return 0, meta.Entry{}, err
			}
			if err := v.mem.WriteBytes(p, src); err != nil {
				return 0, meta.Entry{}, err
			}
		}
		if instrumented {
			v.fac.Clear(p, size)
			v.fac.CopyRange(p, old, n)
			v.fac.Clear(old, oldSize)
		}
		v.alloc.release(old)
		// Realloc-of-old revokes the old block's lock: every retained
		// alias of the old pointer fails its next temporal check.
		revokeHeap(old)
		if v.cfg.Checker != nil {
			v.cfg.Checker.OnFree(old)
			v.cfg.Checker.OnAlloc(p, size, "heap")
		}
		return p, heapEntry(p, size), nil

	case "free":
		p := arg(0)
		v.stats.Frees++
		v.stats.SimInsts += 20
		if p == 0 {
			return 0, meta.Entry{}, nil
		}
		// Temporal pre-check: freeing through a pointer whose lock is
		// already revoked is a double free — a temporal violation, caught
		// before the allocator is consulted (the address may have been
		// recycled to a *live* block by then).
		if v.cfg.Temporal && instrumented && len(metas) > 0 && metas[0] != (meta.Entry{}) {
			v.stats.TemporalChecks++
			v.stats.SimInsts += costTemporalCheck
			if !v.lockLive(metas[0].Key, metas[0].Lock) {
				return 0, meta.Entry{}, &TemporalViolation{Kind: ir.CheckStore,
					Ptr: p, Key: metas[0].Key, Lock: metas[0].Lock, Func: name}
			}
		}
		size := v.alloc.size(p)
		if !v.alloc.release(p) {
			// Free of a pointer that is not a live allocation (double
			// free, interior pointer, stack/global address): a typed
			// memory-fault trap — non-retryable and breaker-neutral —
			// instead of an unclassified runtime error.
			return 0, meta.Entry{}, &Trap{Code: TrapMemFault, Cause: &RuntimeError{
				Msg: fmt.Sprintf("free of invalid pointer 0x%x", p)}}
		}
		revokeHeap(p)
		if v.cfg.Checker != nil {
			v.cfg.Checker.OnFree(p)
		}
		if instrumented {
			// Paper §5.2: clear metadata when freeing pointer-bearing
			// memory so reuse cannot see stale bounds.
			v.fac.Clear(p, size)
		}
		return 0, meta.Entry{}, nil

	// -------------------------------------------------- raw memory ops
	case "memcpy", "memmove":
		dst, src, n := arg(0), arg(1), arg(2)
		// Checked once at the start of the copy (paper §5.2 memcpy).
		if err := checkArg(0, n, true); err != nil {
			return 0, meta.Entry{}, err
		}
		if err := checkArg(1, n, false); err != nil {
			return 0, meta.Entry{}, err
		}
		if v.cfg.Checker != nil {
			if err := v.cfg.Checker.OnStore(dst, n); err != nil {
				return 0, meta.Entry{}, err
			}
			if err := v.cfg.Checker.OnLoad(src, n); err != nil {
				return 0, meta.Entry{}, err
			}
		}
		if n > 0 {
			data, err := v.mem.ReadBytes(src, n)
			if err != nil {
				return 0, meta.Entry{}, err
			}
			if err := v.mem.WriteBytes(dst, data); err != nil {
				return 0, meta.Entry{}, err
			}
		}
		v.stats.SimInsts += 10 + n/4
		if instrumented {
			// Safe default: always carry the metadata (paper §5.2).
			v.fac.CopyRange(dst, src, n)
			v.stats.SimInsts += (n / 8) * uint64(v.fac.Costs().Lookup)
		}
		mret := meta.Entry{}
		if len(metas) > 0 {
			mret = metas[0]
		}
		return dst, mret, nil

	case "memset":
		dst, c, n := arg(0), arg(1), arg(2)
		if err := checkArg(0, n, true); err != nil {
			return 0, meta.Entry{}, err
		}
		if v.cfg.Checker != nil {
			if err := v.cfg.Checker.OnStore(dst, n); err != nil {
				return 0, meta.Entry{}, err
			}
		}
		b, err := v.mem.slice(dst, n)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		for i := range b {
			b[i] = byte(c)
		}
		v.stats.SimInsts += 10 + n/4
		if instrumented && n >= 8 {
			v.fac.Clear(dst, n) // overwritten pointers lose metadata
		}
		mret := meta.Entry{}
		if len(metas) > 0 {
			mret = metas[0]
		}
		return dst, mret, nil

	case "memcmp":
		a, b, n := arg(0), arg(1), arg(2)
		if err := checkArg(0, n, false); err != nil {
			return 0, meta.Entry{}, err
		}
		if err := checkArg(1, n, false); err != nil {
			return 0, meta.Entry{}, err
		}
		ab, err := v.mem.ReadBytes(a, n)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		bb, err := v.mem.ReadBytes(b, n)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		v.stats.SimInsts += 10 + n/4
		for i := uint64(0); i < n; i++ {
			if ab[i] != bb[i] {
				return uint64(int64(int(ab[i]) - int(bb[i]))), meta.Entry{}, nil
			}
		}
		return 0, meta.Entry{}, nil

	// ------------------------------------------------------------- I/O
	case "printf":
		s, err := v.formatPrintf(args, metas, 0)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		fmt.Fprint(v.stdout, s)
		v.stats.SimInsts += 50 + uint64(len(s))
		return uint64(len(s)), meta.Entry{}, nil

	case "sprintf":
		s, err := v.formatPrintf(args, metas, 1)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		if err := checkArg(0, uint64(len(s)+1), true); err != nil {
			return 0, meta.Entry{}, err
		}
		if v.cfg.Checker != nil {
			if err := v.cfg.Checker.OnStore(arg(0), uint64(len(s)+1)); err != nil {
				return 0, meta.Entry{}, err
			}
		}
		if err := v.mem.WriteBytes(arg(0), append([]byte(s), 0)); err != nil {
			return 0, meta.Entry{}, err
		}
		v.stats.SimInsts += 50 + uint64(len(s))
		return uint64(len(s)), meta.Entry{}, nil

	case "puts":
		str, err := v.mem.CString(arg(0), 1<<20)
		if err != nil {
			return 0, meta.Entry{}, err
		}
		if err := checkArg(0, uint64(len(str)+1), false); err != nil {
			return 0, meta.Entry{}, err
		}
		fmt.Fprintln(v.stdout, str)
		v.stats.SimInsts += 30 + uint64(len(str))
		return uint64(len(str) + 1), meta.Entry{}, nil

	case "putchar":
		fmt.Fprintf(v.stdout, "%c", rune(byte(arg(0))))
		v.stats.SimInsts += 10
		return arg(0), meta.Entry{}, nil

	// --------------------------------------------------------- control
	case "exit":
		v.exitCode = int64(arg(0))
		v.halted = true
		return 0, meta.Entry{}, nil

	case "abort":
		return 0, meta.Entry{}, &RuntimeError{Msg: "abort called"}

	// ----------------------------------------------------------- misc
	case "rand":
		// xorshift64*: deterministic across runs for reproducibility.
		v.rngState ^= v.rngState >> 12
		v.rngState ^= v.rngState << 25
		v.rngState ^= v.rngState >> 27
		v.stats.SimInsts += 8
		return (v.rngState * 0x2545F4914F6CDD1D) >> 33 & 0x7fffffff, meta.Entry{}, nil

	case "srand":
		v.rngState = arg(0) | 1
		return 0, meta.Entry{}, nil

	case "clock", "time":
		return v.steps, meta.Entry{}, nil

	// -------------------------------------------------------- varargs
	// The va_* builtins implement the paper's §5.2 variable-argument
	// support: the callee's vararg area carries the argument values and
	// their pointer metadata, and decoding is *checked* — reading more
	// arguments than were passed aborts under instrumentation, instead
	// of reading garbage as plain C would.
	case "va_start":
		f.vaCursor = 0
		v.stats.SimInsts += 2
		return 0, meta.Entry{}, nil

	case "va_end":
		return 0, meta.Entry{}, nil

	case "va_arg_int", "va_arg_long", "va_arg_double", "va_arg_ptr":
		v.stats.SimInsts += 3
		if f.vaCursor >= len(f.varargs) {
			if instrumented {
				return 0, meta.Entry{}, &SpatialViolation{
					Kind: ir.CheckLoad, Func: f.fn.Name + " (va_arg)",
					Ptr: uint64(f.vaCursor), Bound: uint64(len(f.varargs)),
				}
			}
			// Unchecked C reads garbage past the argument area.
			return 0, meta.Entry{}, nil
		}
		val := f.varargs[f.vaCursor]
		m := f.varMetas[f.vaCursor]
		f.vaCursor++
		switch name {
		case "va_arg_int":
			return uint64(int64(int32(val))), meta.Entry{}, nil
		case "va_arg_ptr":
			return val, m, nil
		default:
			return val, meta.Entry{}, nil
		}

	case "setbound":
		// SoftBound extension (paper §3.1/§5.2): programmer-supplied
		// bounds, e.g. for custom allocators. Returns its pointer
		// argument with bounds [ptr, ptr+size). setbound is spatial: the
		// temporal identity is preserved when the argument carried one,
		// and defaults to the never-revoked global lock otherwise.
		p, size := arg(0), arg(1)
		e := meta.Entry{Base: p, Bound: p + size}
		if v.cfg.Temporal {
			e.Key, e.Lock = globalKey, globalLock
			if len(metas) > 0 && metas[0].Key != 0 {
				e.Key, e.Lock = metas[0].Key, metas[0].Lock
			}
		}
		return p, e, nil

	// ----------------------------------------------------------- math
	case "sqrt":
		return fret(math.Sqrt(farg(0)))
	case "fabs":
		return fret(math.Abs(farg(0)))
	case "pow":
		return fret(math.Pow(farg(0), farg(1)))
	case "sin":
		return fret(math.Sin(farg(0)))
	case "cos":
		return fret(math.Cos(farg(0)))
	case "tan":
		return fret(math.Tan(farg(0)))
	case "exp":
		return fret(math.Exp(farg(0)))
	case "log":
		return fret(math.Log(farg(0)))
	case "floor":
		return fret(math.Floor(farg(0)))
	case "ceil":
		return fret(math.Ceil(farg(0)))
	case "atan":
		return fret(math.Atan(farg(0)))
	case "atan2":
		return fret(math.Atan2(farg(0), farg(1)))
	case "fmod":
		return fret(math.Mod(farg(0), farg(1)))
	}
	return 0, meta.Entry{}, &RuntimeError{Msg: "call to undefined function " + name}
}

// formatPrintf renders a printf-family format. fmtArg is the index of the
// format-string argument; conversion arguments follow it.
func (v *VM) formatPrintf(args []uint64, metas []meta.Entry, fmtArg int) (string, error) {
	if fmtArg >= len(args) {
		return "", &RuntimeError{Msg: "printf: missing format string"}
	}
	format, err := v.mem.CString(args[fmtArg], 1<<20)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	ai := fmtArg + 1
	next := func() uint64 {
		if ai < len(args) {
			x := args[ai]
			ai++
			return x
		}
		ai++
		return 0
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		// Parse %[flags][width][.prec][length]verb.
		j := i + 1
		spec := "%"
		for j < len(format) && strings.IndexByte("-+ 0#123456789.", format[j]) >= 0 {
			spec += string(format[j])
			j++
		}
		long := 0
		for j < len(format) && (format[j] == 'l' || format[j] == 'h') {
			if format[j] == 'l' {
				long++
			}
			j++
		}
		if j >= len(format) {
			b.WriteString(spec)
			break
		}
		verb := format[j]
		j++
		switch verb {
		case '%':
			b.WriteByte('%')
		case 'd', 'i':
			val := int64(next())
			if long == 0 {
				val = int64(int32(val))
			}
			fmt.Fprintf(&b, spec+"d", val)
		case 'u':
			val := next()
			if long == 0 {
				val = uint64(uint32(val))
			}
			fmt.Fprintf(&b, spec+"d", val)
		case 'x':
			val := next()
			if long == 0 {
				val = uint64(uint32(val))
			}
			fmt.Fprintf(&b, spec+"x", val)
		case 'X':
			val := next()
			if long == 0 {
				val = uint64(uint32(val))
			}
			fmt.Fprintf(&b, spec+"X", val)
		case 'o':
			fmt.Fprintf(&b, spec+"o", next())
		case 'c':
			fmt.Fprintf(&b, spec+"c", rune(byte(next())))
		case 'p':
			fmt.Fprintf(&b, "0x%x", next())
		case 'f', 'F':
			fmt.Fprintf(&b, spec+"f", math.Float64frombits(next()))
		case 'e', 'E':
			fmt.Fprintf(&b, spec+"e", math.Float64frombits(next()))
		case 'g', 'G':
			fmt.Fprintf(&b, spec+"g", math.Float64frombits(next()))
		case 's':
			strIdx := ai
			p := next()
			s, err := v.mem.CString(p, 1<<20)
			if err != nil {
				return "", err
			}
			// Library-wrapper read check (full mode only).
			if v.cfg.Mode == CheckFull && strIdx < len(metas) && metas[strIdx] != (meta.Entry{}) {
				m := metas[strIdx]
				v.stats.Checks++
				if p < m.Base || p+uint64(len(s))+1 > m.Bound {
					return "", &SpatialViolation{Kind: ir.CheckLoad, Ptr: p,
						Base: m.Base, Bound: m.Bound, Size: uint64(len(s)) + 1,
						Func: "printf"}
				}
			}
			fmt.Fprintf(&b, spec+"s", s)
		default:
			b.WriteString(spec + string(verb))
		}
		i = j
	}
	return b.String(), nil
}
