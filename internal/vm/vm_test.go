package vm

import (
	"math"
	"testing"
	"testing/quick"

	"softbound/internal/ir"
)

// ----------------------------------------------------------------- memory

func TestMemSegments(t *testing.T) {
	m := NewMem(4096, 1<<20, 1<<20)

	// Globals.
	if err := m.WriteU64(GlobalBase+8, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(GlobalBase + 8)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("global rw: %v %x", err, v)
	}

	// Heap.
	if err := m.WriteU32(HeapBase, 42); err != nil {
		t.Fatal(err)
	}

	// Stack.
	if err := m.WriteU16(StackTop-16, 7); err != nil {
		t.Fatal(err)
	}

	// Unmapped: null page, gaps, beyond segments.
	for _, addr := range []uint64{0, 8, GlobalBase + 4096, HeapBase - 8, StackTop} {
		if _, err := m.ReadU64(addr); err == nil {
			t.Errorf("read of unmapped 0x%x succeeded", addr)
		}
	}

	// Range straddling a segment end faults.
	if err := m.WriteU64(GlobalBase+4092, 1); err == nil {
		t.Error("straddling write succeeded")
	}
	// Overflow-safe bounds arithmetic.
	if m.Valid(^uint64(0)-4, 16) {
		t.Error("wrap-around range validated")
	}
}

func TestMemEndianness(t *testing.T) {
	m := NewMem(64, 0, 0)
	m.WriteU64(GlobalBase, 0x0102030405060708)
	b, _ := m.ReadU8(GlobalBase)
	if b != 0x08 {
		t.Fatalf("little-endian violated: first byte %x", b)
	}
	w, _ := m.ReadU16(GlobalBase + 6)
	if w != 0x0102 {
		t.Fatalf("u16 at offset 6: %x", w)
	}
}

func TestCString(t *testing.T) {
	m := NewMem(64, 0, 0)
	m.WriteBytes(GlobalBase, []byte("hi\x00junk"))
	s, err := m.CString(GlobalBase, 100)
	if err != nil || s != "hi" {
		t.Fatalf("CString = %q, %v", s, err)
	}
}

// --------------------------------------------------------------- allocator

func TestHeapAllocator(t *testing.T) {
	h := newHeapAllocator(HeapBase + 1<<20)
	a := h.alloc(10)
	b := h.alloc(10)
	if a == 0 || b == 0 || a == b {
		t.Fatalf("allocs: %x %x", a, b)
	}
	if b != a+16 {
		t.Fatalf("blocks not contiguous: %x %x", a, b)
	}
	if h.size(a) != 10 {
		t.Fatalf("size(a) = %d", h.size(a))
	}
	if !h.release(a) {
		t.Fatal("release failed")
	}
	if h.release(a) {
		t.Fatal("double free succeeded")
	}
	// Reuse from the free list.
	c := h.alloc(12)
	if c != a {
		t.Fatalf("free block not reused: %x want %x", c, a)
	}
	// OOM.
	if h.alloc(1<<30) != 0 {
		t.Fatal("oversized alloc succeeded")
	}
	if h.alloc(0) == 0 {
		t.Fatal("malloc(0) returned NULL (we give a minimal block)")
	}
}

// --------------------------------------------------------------- semantics

func TestWrapInt(t *testing.T) {
	cases := []struct {
		v      uint64
		width  int
		signed bool
		want   uint64
	}{
		{0x1FF, 8, false, 0xFF},
		{0x1FF, 8, true, 0xFFFFFFFFFFFFFFFF}, // 0xFF sign-extends to -1
		{0x80, 8, true, 0xFFFFFFFFFFFFFF80},
		{0x7F, 8, true, 0x7F},
		{0xFFFFFFFF, 32, false, 0xFFFFFFFF},
		{0xFFFFFFFF, 32, true, 0xFFFFFFFFFFFFFFFF},
		{5, 64, true, 5},
		{5, 0, true, 5},
	}
	for _, c := range cases {
		if got := wrapInt(c.v, c.width, c.signed); got != c.want {
			t.Errorf("wrapInt(%#x, %d, %v) = %#x, want %#x", c.v, c.width, c.signed, got, c.want)
		}
	}
}

func TestWrapIntIdempotent(t *testing.T) {
	f := func(v uint64, w uint8, signed bool) bool {
		width := int(w%9) * 8 // 0..64
		once := wrapInt(v, width, signed)
		twice := wrapInt(once, width, signed)
		return once == twice
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExecConv(t *testing.T) {
	// double -> int32 truncation.
	in := &ir.Inst{Kind: ir.KConv, Mem: ir.MemI32, ConvSrc: ir.MemF64, IntWidth: 32, Signed: true}
	got := execConv(math.Float64bits(-3.7), in)
	if int64(got) != -3 {
		t.Errorf("(-3.7) -> %d, want -3", int64(got))
	}
	// NaN -> 0.
	if execConv(math.Float64bits(math.NaN()), in) != 0 {
		t.Error("NaN conversion not clamped")
	}
	// int -> double.
	in2 := &ir.Inst{Kind: ir.KConv, Mem: ir.MemF64, ConvSrc: ir.MemI64, Signed: true}
	got = execConv(uint64(0xFFFFFFFFFFFFFFFF), in2) // -1
	if math.Float64frombits(got) != -1.0 {
		t.Errorf("int->double: %v", math.Float64frombits(got))
	}
	// unsigned int -> double.
	in3 := &ir.Inst{Kind: ir.KConv, Mem: ir.MemF64, ConvSrc: ir.MemU32, Signed: false}
	got = execConv(uint64(1<<63), in3)
	if math.Float64frombits(got) != math.Ldexp(1, 63) {
		t.Errorf("uint->double: %v", math.Float64frombits(got))
	}
	// int -> float32 rounding.
	in4 := &ir.Inst{Kind: ir.KConv, Mem: ir.MemF32, ConvSrc: ir.MemI64, Signed: true}
	got = execConv(uint64(16777217), in4) // not representable in f32
	if math.Float64frombits(got) != 16777216.0 {
		t.Errorf("f32 rounding: %v", math.Float64frombits(got))
	}
	// Overflow clamps rather than wrapping surprisingly.
	got = execConv(math.Float64bits(1e30), in)
	if int64(got) != truncHelper(math.MaxInt64, 32) {
		t.Logf("clamp result: %d", int64(got))
	}
}

func truncHelper(v int64, width int) int64 {
	return int64(wrapInt(uint64(v), width, true))
}

// ------------------------------------------------------------ mini modules

// buildModule assembles a module with one function executing the
// instructions (plus implicit terminator handling by the caller).
func buildModule(f *ir.Func, globals ...*ir.Global) *ir.Module {
	m := ir.NewModule("test")
	m.AddFunc(f)
	m.Globals = globals
	return m
}

func TestRunTrivialMain(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KRet, HasVal: true, A: ir.CI(42)},
	}}}
	v, err := New(buildModule(f), Config{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Fatalf("exit = %d", code)
	}
}

func TestGlobalInitAndRelocation(t *testing.T) {
	g1 := &ir.Global{Name: "data", Size: 16, Align: 8,
		Init: []byte{1, 0, 0, 0, 0, 0, 0, 0}}
	g2 := &ir.Global{Name: "ptr", Size: 8, Align: 8,
		PtrInits: []ir.PtrInit{{Offset: 0, Sym: "data", Addend: 4}}}

	// main loads the relocated pointer and compares with &data+4.
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	f.NewReg(ir.ClassPtr) // r0: loaded pointer
	f.NewReg(ir.ClassInt) // r1: comparison
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KLoad, Dst: 0, A: ir.GV("ptr", 0), Mem: ir.MemPtr},
		{Kind: ir.KCmp, Dst: 1, Pred: ir.PredEQ, A: ir.R(0), B: ir.GV("data", 4)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(1)},
	}}}
	v, err := New(buildModule(f, g1, g2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := v.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatal("relocated pointer mismatch")
	}
	// Metadata was seeded for the initialized pointer (paper §5.2).
	e := v.fac.Lookup(v.GlobalAddr("ptr"))
	if e.Base != v.GlobalAddr("data") || e.Bound != v.GlobalAddr("data")+16 {
		t.Fatalf("seeded metadata: %+v", e)
	}
}

func TestSpatialViolationErrorRendering(t *testing.T) {
	e := &SpatialViolation{Kind: ir.CheckStore, Ptr: 0x100, Base: 0x80,
		Bound: 0x100, Size: 4, Func: "f"}
	s := e.Error()
	if s == "" || len(s) < 20 {
		t.Fatalf("weak error: %q", s)
	}
}

func TestStepLimit(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBr, Target: 0}, // infinite loop
	}}}
	v, err := New(buildModule(f), Config{StepLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err == nil {
		t.Fatal("runaway loop not stopped")
	}
}

func TestDivisionByZeroTrap(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBin, Dst: 0, Op: ir.OpDiv, A: ir.CI(1), B: ir.CI(0), Signed: true},
		{Kind: ir.KRet, HasVal: true, A: ir.R(0)},
	}}}
	v, _ := New(buildModule(f), Config{})
	if _, err := v.Run(); err == nil {
		t.Fatal("division by zero not trapped")
	}
}
