package vm

import (
	"errors"
	"strings"
	"testing"

	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/metrics"
)

// Engine differential tests: the fast (pre-decoded) engine must be
// observationally identical to the reference interpreter — exit code,
// trap classification, violation fields, and every modeled statistic.
// The driver-level suite holds this over compiled C programs; the tests
// here pin the tricky hand-built cases (fused superinstructions, step
// limits landing mid-fusion, metadata caching).

type engineResult struct {
	code  int64
	err   error
	stats metrics.Stats
}

func runEngine(t *testing.T, mod *ir.Module, cfg Config, kind InterpKind) engineResult {
	t.Helper()
	cfg.Interp = kind
	v, err := New(mod, cfg)
	if err != nil {
		t.Fatal(err)
	}
	code, rerr := v.Run()
	st := *v.Stats()
	// The cache counters exist only under the fast engine; everything
	// else must match bit-for-bit.
	st.MetaCacheHits, st.MetaCacheMisses, st.MetaCacheSimInsts = 0, 0, 0
	return engineResult{code: code, err: rerr, stats: st}
}

// requireEngineAgreement runs the module on all three engines and holds
// each non-reference engine to the reference result: exit code, trap
// classification, violation fields, and every modeled statistic.
func requireEngineAgreement(t *testing.T, mod *ir.Module, cfg Config) engineResult {
	t.Helper()
	ref := runEngine(t, mod, cfg, InterpRef)
	fast := runEngine(t, mod, cfg, InterpFast)
	compiled := runEngine(t, mod, cfg, InterpCompiled)
	for _, e := range []struct {
		kind InterpKind
		got  engineResult
	}{{InterpFast, fast}, {InterpCompiled, compiled}} {
		kind, got := e.kind, e.got
		if got.code != ref.code {
			t.Fatalf("exit code: %s=%d ref=%d (%s err=%v, ref err=%v)",
				kind, got.code, ref.code, kind, got.err, ref.err)
		}
		if CodeOf(got.err) != CodeOf(ref.err) {
			t.Fatalf("trap code: %s=%q (%v) ref=%q (%v)",
				kind, CodeOf(got.err), got.err, CodeOf(ref.err), ref.err)
		}
		var gv, rv *SpatialViolation
		errors.As(got.err, &gv)
		errors.As(ref.err, &rv)
		if (gv == nil) != (rv == nil) {
			t.Fatalf("violation presence: %s=%v ref=%v", kind, got.err, ref.err)
		}
		if gv != nil && *gv != *rv {
			t.Fatalf("violation fields:\n  %s: %+v\n  ref:  %+v", kind, *gv, *rv)
		}
		if got.stats != ref.stats {
			t.Fatalf("stats diverged:\n  %s: %+v\n  ref:  %+v", kind, got.stats, ref.stats)
		}
	}
	return fast
}

// arithLoopModule sums i*3 over 1000 iterations with a mix of binary ops
// and both branch kinds.
func arithLoopModule() *ir.Module {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt) // i
	r1 := f.NewReg(ir.ClassInt) // sum
	r2 := f.NewReg(ir.ClassInt) // scratch
	r3 := f.NewReg(ir.ClassInt) // condition
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: r1, A: ir.CI(0)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: r3, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(1000)},
			{Kind: ir.KCondBr, A: ir.R(r3), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: r2, Op: ir.OpMul, A: ir.R(r0), B: ir.CI(3)},
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r2)},
			{Kind: ir.KBin, Dst: r2, Op: ir.OpXor, A: ir.R(r1), B: ir.R(r0), IntWidth: 32},
			{Kind: ir.KBin, Dst: r2, Op: ir.OpAnd, A: ir.R(r2), B: ir.CI(0xFF), IntWidth: 32},
			{Kind: ir.KUn, Dst: r2, Op: ir.OpNot, A: ir.R(r2), IntWidth: 32},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAnd, A: ir.R(r1), B: ir.CI(0xFFFF)},
			{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
		}},
	}
	return buildModule(f)
}

// fusedAccessModule walks a 64-byte global with the exact
// GEP+Check+Load and GEP+Check+Store shapes the instrumentation emits.
// iters > 8 runs the fused check out of bounds.
func fusedAccessModule(iters int64) *ir.Module {
	g := &ir.Global{Name: "g", Size: 64, Align: 8}
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt) // i
	r1 := f.NewReg(ir.ClassInt) // sum
	r2 := f.NewReg(ir.ClassPtr) // p
	r3 := f.NewReg(ir.ClassInt) // v
	r4 := f.NewReg(ir.ClassInt) // condition
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: r1, A: ir.CI(0)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: r4, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(iters)},
			{Kind: ir.KCondBr, A: ir.R(r4), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			// Fused triple #1: load g[i].
			{Kind: ir.KGEP, Dst: r2, A: ir.GV("g", 0), B: ir.R(r0), Size: 8},
			{Kind: ir.KCheck, CheckK: ir.CheckLoad, A: ir.R(r2),
				Base: ir.GV("g", 0), Bound: ir.GV("g", 64), AccessSize: 8},
			{Kind: ir.KLoad, Dst: r3, A: ir.R(r2), Mem: ir.MemI64},
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r3)},
			{Kind: ir.KBin, Dst: r3, Op: ir.OpAdd, A: ir.R(r3), B: ir.CI(5)},
			// Fused triple #2: store g[i] back.
			{Kind: ir.KGEP, Dst: r2, A: ir.GV("g", 0), B: ir.R(r0), Size: 8},
			{Kind: ir.KCheck, CheckK: ir.CheckStore, A: ir.R(r2),
				Base: ir.GV("g", 0), Bound: ir.GV("g", 64), AccessSize: 8},
			{Kind: ir.KStore, A: ir.R(r2), B: ir.R(r3), Mem: ir.MemI64},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
		}},
	}
	return buildModule(f, g)
}

func TestEngineAgreementArithLoop(t *testing.T) {
	res := requireEngineAgreement(t, arithLoopModule(), Config{})
	if res.err != nil {
		t.Fatalf("clean program errored: %v", res.err)
	}
	if want := int64((3 * 999 * 1000 / 2) & 0xFFFF); res.code != want {
		t.Fatalf("exit = %d, want %d", res.code, want)
	}
}

func TestEngineAgreementFusedAccess(t *testing.T) {
	res := requireEngineAgreement(t, fusedAccessModule(8), Config{})
	if res.err != nil {
		t.Fatalf("in-bounds walk errored: %v", res.err)
	}
	// Second pass over the stored values: 8 stores of +5 each.
	if res.stats.Stores != 8 || res.stats.Loads != 8 || res.stats.Checks != 16 {
		t.Fatalf("unexpected op mix: %+v", res.stats)
	}
}

func TestEngineAgreementFusedViolation(t *testing.T) {
	res := requireEngineAgreement(t, fusedAccessModule(9), Config{})
	var sv *SpatialViolation
	if !errors.As(res.err, &sv) {
		t.Fatalf("out-of-bounds fused access not caught: %v", res.err)
	}
	if sv.Kind != ir.CheckLoad || sv.Size != 8 {
		t.Fatalf("violation: %+v", sv)
	}
}

// Sweeping the step limit across the whole run drives the budget
// exhaustion point through every instruction — including the middle of
// both fused triples — and demands bit-identical traps and statistics at
// each position.
func TestEngineAgreementStepLimitSweep(t *testing.T) {
	mod := fusedAccessModule(8)
	for limit := uint64(1); limit <= 120; limit++ {
		requireEngineAgreement(t, mod, Config{StepLimit: limit})
	}
}

// A violation that the reference engine hits on exactly the step the
// budget would also expire must report the violation, not the limit, in
// both engines (the check runs before the budget poll on the next inst).
func TestEngineAgreementViolationVsLimitSweep(t *testing.T) {
	mod := fusedAccessModule(9)
	for limit := uint64(80); limit <= 110; limit++ {
		requireEngineAgreement(t, mod, Config{StepLimit: limit})
	}
}

func TestEngineAgreementMetaOps(t *testing.T) {
	g := &ir.Global{Name: "p", Size: 8, Align: 8}
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	rb := f.NewReg(ir.ClassInt)
	re := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMetaStore, A: ir.GV("p", 0), SrcBase: ir.CI(0x1000), SrcBound: ir.CI(0x1040)},
		// Check+MetaLoad adjacency: the fused form on the fast engine.
		{Kind: ir.KCheck, CheckK: ir.CheckLoad, A: ir.GV("p", 0),
			Base: ir.GV("p", 0), Bound: ir.GV("p", 8), AccessSize: 8},
		{Kind: ir.KMetaLoad, A: ir.GV("p", 0), DstBaseR: rb, DstBndR: re},
		{Kind: ir.KMetaLoad, A: ir.GV("p", 0), DstBaseR: rb, DstBndR: re}, // repeat: cache hit
		{Kind: ir.KBin, Dst: rb, Op: ir.OpAdd, A: ir.R(rb), B: ir.R(re)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(rb)},
	}}}
	res := requireEngineAgreement(t, buildModule(f, g), Config{})
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.code != 0x1000+0x1040 {
		t.Fatalf("metadata round-trip: exit=%#x", res.code)
	}
	if res.stats.MetaLoads != 2 || res.stats.MetaStores != 1 {
		t.Fatalf("meta op counts: %+v", res.stats)
	}
}

// The clock builtin returns v.steps, so the fast engine must flush its
// batched step count before every builtin call; agreement on the exit
// code proves the flush is exact.
func TestEngineAgreementClockSeesBatchedSteps(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt)
	r1 := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KConst, Dst: r0, A: ir.CI(1)},
		{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.R(r0)},
		{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.R(r0)},
		{Kind: ir.KCall, Callee: ir.FV("clock"), Dst: r1,
			DstBase: ir.NoReg, DstBound: ir.NoReg},
		{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
	}}}
	res := requireEngineAgreement(t, buildModule(f), Config{})
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.code == 0 {
		t.Fatal("clock returned 0: batched steps were not flushed")
	}
}

func TestEngineAgreementCallsAndIndirect(t *testing.T) {
	leaf := &ir.Func{Name: "leaf", HasRet: true, RetClass: ir.ClassInt, OrigParams: 2}
	a := leaf.NewReg(ir.ClassInt)
	b := leaf.NewReg(ir.ClassInt)
	s := leaf.NewReg(ir.ClassInt)
	leaf.ParamRegs = []ir.Reg{a, b}
	leaf.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBin, Dst: s, Op: ir.OpAdd, A: ir.R(a), B: ir.R(b)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(s)},
	}}}

	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt) // i
	r1 := f.NewReg(ir.ClassInt) // sum
	r2 := f.NewReg(ir.ClassInt) // call result
	r3 := f.NewReg(ir.ClassInt) // condition
	rp := f.NewReg(ir.ClassPtr) // function pointer
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: r1, A: ir.CI(0)},
			{Kind: ir.KConst, Dst: rp, A: ir.FV("leaf")},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: r3, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(200)},
			{Kind: ir.KCondBr, A: ir.R(r3), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			// Direct call, then the same leaf through a function pointer.
			{Kind: ir.KCall, Callee: ir.FV("leaf"), Dst: r2,
				DstBase: ir.NoReg, DstBound: ir.NoReg,
				Args: []ir.Value{ir.R(r0), ir.CI(7)}},
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r2)},
			{Kind: ir.KCall, Callee: ir.R(rp), Dst: r2,
				DstBase: ir.NoReg, DstBound: ir.NoReg,
				Args: []ir.Value{ir.R(r0), ir.CI(9)}},
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r2)},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KBin, Dst: r1, Op: ir.OpAnd, A: ir.R(r1), B: ir.CI(0xFF)},
			{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
		}},
	}
	mod := ir.NewModule("test")
	mod.AddFunc(f)
	mod.AddFunc(leaf)
	res := requireEngineAgreement(t, mod, Config{})
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.stats.Calls != 400 {
		t.Fatalf("calls = %d", res.stats.Calls)
	}
}

// A malformed operand kind must surface as a typed runtime error on both
// engines, never a silent zero (the eval fallthrough used to return 0).
func TestEngineAgreementUnknownOperandKind(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMov, Dst: r0, A: ir.Value{Kind: ir.ValueKind(99)}},
		{Kind: ir.KRet, HasVal: true, A: ir.R(r0)},
	}}}
	res := requireEngineAgreement(t, buildModule(f), Config{})
	if res.err == nil {
		t.Fatal("malformed operand executed silently")
	}
	var re *RuntimeError
	if !errors.As(res.err, &re) {
		t.Fatalf("want RuntimeError, got %T: %v", res.err, res.err)
	}
}

func TestEvalUnknownOperandKindMessage(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMov, Dst: r0, A: ir.Value{Kind: ir.ValueKind(99)}},
		{Kind: ir.KRet, HasVal: true, A: ir.R(r0)},
	}}}
	res := runEngine(t, buildModule(f), Config{}, InterpRef)
	if res.err == nil || !strings.Contains(res.err.Error(), "unknown operand kind") {
		t.Fatalf("reference engine error: %v", res.err)
	}
}

// ------------------------------------------------------------- decode

func TestDecodeFusesInstrumentationTriples(t *testing.T) {
	mod := fusedAccessModule(8)
	prog := decodeModule(mod)
	df := prog.funcs[mod.Lookup("main")]
	var haveLoad, haveStore bool
	for _, d := range df.code {
		switch d.op {
		case dGEPCheckLoad:
			haveLoad = true
			if d.nsteps != 3 {
				t.Fatalf("fused load nsteps = %d", d.nsteps)
			}
		case dGEPCheckStore:
			haveStore = true
		case dGEP, dCheck, dLoad, dStore:
			t.Fatalf("unfused %v survived in the hot block", d.op)
		}
	}
	if !haveLoad || !haveStore {
		t.Fatalf("fusion missed: load=%v store=%v", haveLoad, haveStore)
	}
	// Branch targets must be flat indices at block starts.
	for _, d := range df.code {
		if d.op == dBr || d.op == dCondBr {
			found := false
			for _, s := range df.blockStart {
				if d.target == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("branch target %d is not a block start (%v)", d.target, df.blockStart)
			}
		}
	}
}

func TestDecodeSharedAcrossVMs(t *testing.T) {
	mod := arithLoopModule()
	v1, err := New(mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v1.prog == nil || v1.prog != v2.prog {
		t.Fatal("decoded program not shared via the module cache")
	}
}

// ------------------------------------------------------- metadata cache

func TestFastEngineMetaCacheStats(t *testing.T) {
	g := &ir.Global{Name: "p", Size: 8, Align: 8}
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r0 := f.NewReg(ir.ClassInt)
	rb := f.NewReg(ir.ClassInt)
	re := f.NewReg(ir.ClassInt)
	rc := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{
			{Kind: ir.KConst, Dst: r0, A: ir.CI(0)},
			{Kind: ir.KMetaStore, A: ir.GV("p", 0), SrcBase: ir.CI(16), SrcBound: ir.CI(32)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KCmp, Dst: rc, Pred: ir.PredLT, Signed: true, A: ir.R(r0), B: ir.CI(100)},
			{Kind: ir.KCondBr, A: ir.R(rc), Target: 2, Else: 3},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KMetaLoad, A: ir.GV("p", 0), DstBaseR: rb, DstBndR: re},
			{Kind: ir.KBin, Dst: r0, Op: ir.OpAdd, A: ir.R(r0), B: ir.CI(1)},
			{Kind: ir.KBr, Target: 1},
		}},
		{Insts: []ir.Inst{
			{Kind: ir.KRet, HasVal: true, A: ir.R(rb)},
		}},
	}
	mod := buildModule(f, g)

	v, err := New(mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.MetaLoads != 100 {
		t.Fatalf("meta loads = %d", st.MetaLoads)
	}
	if st.MetaCacheHits+st.MetaCacheMisses != st.MetaLoads {
		t.Fatalf("cache probes (%d+%d) != metaloads (%d)",
			st.MetaCacheHits, st.MetaCacheMisses, st.MetaLoads)
	}
	if st.MetaCacheHits < 99 {
		t.Fatalf("repeated lookup of one slot should hit: hits=%d", st.MetaCacheHits)
	}
	wantSim := (st.MetaCacheHits+st.MetaCacheMisses)*meta.CacheHitCost +
		st.MetaCacheMisses*uint64(v.fac.Costs().Lookup)
	if st.MetaCacheSimInsts != wantSim {
		t.Fatalf("cache cost line = %d, want %d", st.MetaCacheSimInsts, wantSim)
	}

	// Disabled cache: counters stay zero, everything else unchanged.
	v2, err := New(mod, Config{DisableMetaCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Run(); err != nil {
		t.Fatal(err)
	}
	st2 := v2.Stats()
	if st2.MetaCacheHits != 0 || st2.MetaCacheMisses != 0 || st2.MetaCacheSimInsts != 0 {
		t.Fatalf("disabled cache reported activity: %+v", st2)
	}
	if st2.SimInsts != st.SimInsts {
		t.Fatalf("cache changed modeled cost: %d vs %d", st2.SimInsts, st.SimInsts)
	}
}

// TestWildJumpTrapCode pins the typed classification of a call through a
// corrupted function pointer (ISSUE 6 satellite): both engines must
// return a *WildJumpError carrying the bogus address, classified as
// TrapWildJump — not the generic runtime-error bucket — so breakers and
// BENCH.json trap_code can tell a hijacked call site from a stray fault.
func TestWildJumpTrapCode(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	rp := f.NewReg(ir.ClassPtr)
	r0 := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KConst, Dst: rp, A: ir.CI(0xdead0)},
		{Kind: ir.KCall, Callee: ir.R(rp), Dst: r0,
			DstBase: ir.NoReg, DstBound: ir.NoReg},
		{Kind: ir.KRet, HasVal: true, A: ir.R(r0)},
	}}}
	res := requireEngineAgreement(t, buildModule(f), Config{})
	if res.err == nil {
		t.Fatal("wild jump executed silently")
	}
	var wj *WildJumpError
	if !errors.As(res.err, &wj) {
		t.Fatalf("want WildJumpError, got %T: %v", res.err, res.err)
	}
	if wj.Addr != 0xdead0 || wj.Func != "main" {
		t.Fatalf("wild-jump fields: %+v", wj)
	}
	if code := CodeOf(res.err); code != TrapWildJump {
		t.Fatalf("trap code = %q, want %q", code, TrapWildJump)
	}
	if TrapWildJump.Retryable() {
		t.Fatal("wild jump is deterministic; it must not be retryable")
	}
}

// TestEngineAgreementSignatureMismatchIndirect pins the positional
// shadow-window contract when the static call-site signature and the
// dynamic callee disagree (ISSUE 6). The callee observes the width of
// the bounds seeded into its pointer-parameter metadata registers, so
// the test sees exactly which window slot each parameter popped.
func TestEngineAgreementSignatureMismatchIndirect(t *testing.T) {
	// sink(scalar, ptr): the ptr parameter is arg index 1, so positional
	// routing must hand it window slot 2 — never the first pushed pair.
	sink := &ir.Func{Name: "sink", HasRet: true, RetClass: ir.ClassInt,
		OrigParams: 2, Transformed: true,
		Params: []ir.Param{{Class: ir.ClassInt}, {Class: ir.ClassPtr, IsPtr: true}}}
	sa := sink.NewReg(ir.ClassInt)
	sp := sink.NewReg(ir.ClassPtr)
	sb := sink.NewReg(ir.ClassPtr)
	se := sink.NewReg(ir.ClassPtr)
	sw := sink.NewReg(ir.ClassInt)
	sink.ParamRegs = []ir.Reg{sa, sp, sb, se}
	sink.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBin, Dst: sw, Op: ir.OpSub, A: ir.R(se), B: ir.R(sb)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(sw)},
	}}}

	// pair(ptr, ptr): two pointer params; a site pushing only one slot
	// must leave the second pair zero (fail-closed), not misaligned.
	pair := &ir.Func{Name: "pair", HasRet: true, RetClass: ir.ClassInt,
		OrigParams: 2, Transformed: true,
		Params: []ir.Param{{Class: ir.ClassPtr, IsPtr: true}, {Class: ir.ClassPtr, IsPtr: true}}}
	p0 := pair.NewReg(ir.ClassPtr)
	p1 := pair.NewReg(ir.ClassPtr)
	b0 := pair.NewReg(ir.ClassPtr)
	e0 := pair.NewReg(ir.ClassPtr)
	b1 := pair.NewReg(ir.ClassPtr)
	e1 := pair.NewReg(ir.ClassPtr)
	w0 := pair.NewReg(ir.ClassInt)
	w1 := pair.NewReg(ir.ClassInt)
	pair.ParamRegs = []ir.Reg{p0, p1, b0, e0, b1, e1}
	pair.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KBin, Dst: w0, Op: ir.OpSub, A: ir.R(e0), B: ir.R(b0)},
		{Kind: ir.KBin, Dst: w1, Op: ir.OpSub, A: ir.R(e1), B: ir.R(b1)},
		{Kind: ir.KBin, Dst: w0, Op: ir.OpMul, A: ir.R(w0), B: ir.CI(1000)},
		{Kind: ir.KBin, Dst: w0, Op: ir.OpAdd, A: ir.R(w0), B: ir.R(w1)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(w0)},
	}}}

	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	rp := f.NewReg(ir.ClassPtr)
	r1 := f.NewReg(ir.ClassInt)
	r2 := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KConst, Dst: rp, A: ir.FV("sink")},
		// Mismatched site: static signature (ptr, ptr) pushes two slots
		// with different widths; the dynamic callee's only pointer param
		// is position 1 and must get the 8-wide pair, not the 256-wide.
		{Kind: ir.KCall, Callee: ir.R(rp), Dst: r1,
			DstBase: ir.NoReg, DstBound: ir.NoReg,
			Args: []ir.Value{ir.CI(0x300), ir.CI(0x300)},
			Shadow: []ir.ShadowSlot{
				{Arg: 0, Base: ir.CI(0x100), Bound: ir.CI(0x200)},
				{Arg: 1, Base: ir.CI(0x300), Bound: ir.CI(0x308)},
			}},
		// Cast-through-void site: no metadata pushed at all. Every
		// pointer param fails closed to the zero pair.
		{Kind: ir.KCall, Callee: ir.R(rp), Dst: r2,
			DstBase: ir.NoReg, DstBound: ir.NoReg,
			Args: []ir.Value{ir.CI(5), ir.CI(0x300)}},
		{Kind: ir.KBin, Dst: r2, Op: ir.OpMul, A: ir.R(r2), B: ir.CI(100)},
		{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r2)},
		// Fewer slots than pointer params: only arg 0 carries metadata.
		{Kind: ir.KCall, Callee: ir.FV("pair"), Dst: r2,
			DstBase: ir.NoReg, DstBound: ir.NoReg,
			Args: []ir.Value{ir.CI(0x400), ir.CI(0x500)},
			Shadow: []ir.ShadowSlot{
				{Arg: 0, Base: ir.CI(0x400), Bound: ir.CI(0x410)},
			}},
		{Kind: ir.KBin, Dst: r1, Op: ir.OpAdd, A: ir.R(r1), B: ir.R(r2)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
	}}}
	mod := ir.NewModule("test")
	mod.AddFunc(f)
	mod.AddFunc(sink)
	mod.AddFunc(pair)
	res := requireEngineAgreement(t, mod, Config{})
	if res.err != nil {
		t.Fatal(res.err)
	}
	// 8 (positional pair) + 0*100 (fail-closed) + 16*1000+0 (partial).
	if res.code != 8+0+16000 {
		t.Fatalf("exit = %d, want %d (metadata misrouted)", res.code, 8+0+16000)
	}
}

// TestEngineAgreementVarargFixedAndVariadicPointer passes the same
// pointer both as a fixed parameter and as a variadic extra in one call
// (ISSUE 6 satellite). The fast engine used to drop metadata for the
// extras (its caller loop gated on i < OrigParams), so the va_arg'd
// pointer arrived with no bounds; both engines must now observe both
// pairs, each routed by position.
func TestEngineAgreementVarargFixedAndVariadicPointer(t *testing.T) {
	vsink := &ir.Func{Name: "vsink", HasRet: true, RetClass: ir.ClassInt,
		OrigParams: 1, Variadic: true, Transformed: true,
		Params: []ir.Param{{Class: ir.ClassPtr, IsPtr: true}}}
	vp := vsink.NewReg(ir.ClassPtr)
	vb := vsink.NewReg(ir.ClassPtr)
	ve := vsink.NewReg(ir.ClassPtr)
	q := vsink.NewReg(ir.ClassPtr)
	qb := vsink.NewReg(ir.ClassPtr)
	qe := vsink.NewReg(ir.ClassPtr)
	w := vsink.NewReg(ir.ClassInt)
	u := vsink.NewReg(ir.ClassInt)
	vsink.ParamRegs = []ir.Reg{vp, vb, ve}
	vsink.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KCall, Callee: ir.FV("va_start"),
			Dst: ir.NoReg, DstBase: ir.NoReg, DstBound: ir.NoReg},
		{Kind: ir.KCall, Callee: ir.FV("va_arg_ptr"),
			Dst: q, DstBase: qb, DstBound: qe},
		{Kind: ir.KBin, Dst: w, Op: ir.OpSub, A: ir.R(ve), B: ir.R(vb)},
		{Kind: ir.KBin, Dst: u, Op: ir.OpSub, A: ir.R(qe), B: ir.R(qb)},
		{Kind: ir.KBin, Dst: w, Op: ir.OpMul, A: ir.R(w), B: ir.CI(1000)},
		{Kind: ir.KBin, Dst: w, Op: ir.OpAdd, A: ir.R(w), B: ir.R(u)},
		{Kind: ir.KRet, HasVal: true, A: ir.R(w)},
	}}}

	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	r1 := f.NewReg(ir.ClassInt)
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		// Same numeric pointer, fixed and variadic, with different
		// bounds: fixed sees [0x500,0x510) (width 16), the extra sees
		// [0x500,0x508) (width 8).
		{Kind: ir.KCall, Callee: ir.FV("vsink"), Dst: r1,
			DstBase: ir.NoReg, DstBound: ir.NoReg,
			Args: []ir.Value{ir.CI(0x500), ir.CI(0x500)},
			Shadow: []ir.ShadowSlot{
				{Arg: 0, Base: ir.CI(0x500), Bound: ir.CI(0x510)},
				{Arg: 1, Base: ir.CI(0x500), Bound: ir.CI(0x508)},
			}},
		{Kind: ir.KRet, HasVal: true, A: ir.R(r1)},
	}}}
	mod := ir.NewModule("test")
	mod.AddFunc(f)
	mod.AddFunc(vsink)
	res := requireEngineAgreement(t, mod, Config{})
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.code != 16*1000+8 {
		t.Fatalf("exit = %d, want %d (vararg metadata dropped or misrouted)",
			res.code, 16*1000+8)
	}
}
