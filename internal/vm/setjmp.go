package vm

import (
	"fmt"

	"softbound/internal/ir"
)

// setjmp/longjmp support. The jmp_buf lives in ordinary user memory, so a
// buffer overflow can overwrite the saved context — exactly the attack
// surface in the Wilander suite's longjmp tests (Table 3). The first word
// of the jmp_buf holds a checkpoint token; longjmp through a token that
// has been replaced by a function address transfers control there (a
// successful hijack), and any other corruption crashes.

func (v *VM) doSetjmp(f *frame, in *ir.Inst, args []uint64) error {
	env := args[0]
	tok := JmpTokenBase + v.nextJmp*16
	v.nextJmp++
	v.jmpPoints[tok] = &jmpCheckpoint{
		depth:     len(v.stack),
		shadowLen: len(v.shadow),
		block:     f.block,
		ip:        f.ip,
		fip:       f.fip,
		retDst:    in.Dst,
	}
	v.jmpSPs[tok] = v.sp
	if err := v.mem.WriteU64(env, tok); err != nil {
		return err
	}
	if in.Dst != ir.NoReg {
		f.regs[in.Dst] = 0
	}
	v.stats.SimInsts += 10
	f.ip++
	f.fip++
	return nil
}

func (v *VM) doLongjmp(f *frame, args []uint64) error {
	env, val := args[0], uint64(1)
	if len(args) > 1 {
		val = args[1]
	}
	if val == 0 {
		val = 1
	}
	tok, err := v.mem.ReadU64(env)
	if err != nil {
		return err
	}
	v.stats.SimInsts += 10
	if cp, ok := v.jmpPoints[tok]; ok && cp.depth <= len(v.stack) {
		// Frames abandoned by the longjmp bypass popFrame; revoke their
		// temporal locks here so pointers into them die with them.
		for i := cp.depth; i < len(v.stack); i++ {
			if l := v.stack[i].lock; l != 0 {
				v.revokeLock(l)
				v.stack[i].lock = 0
			}
		}
		v.stack = v.stack[:cp.depth]
		v.sp = v.jmpSPs[tok]
		// Unwind the shadow stack with the frames: every window pushed
		// by calls since the setjmp is abandoned.
		if cp.shadowLen <= len(v.shadow) {
			v.shadow = v.shadow[:cp.shadowLen]
		}
		top := &v.stack[len(v.stack)-1]
		top.block = cp.block
		top.ip = cp.ip + 1   // resume after the setjmp call
		top.fip = cp.fip + 1 // same point in the decoded body
		if cp.retDst != ir.NoReg {
			top.regs[cp.retDst] = val
		}
		return nil
	}
	if target := v.funcByAddr(tok); target != nil {
		// Corrupted jmp_buf redirected control: the attack succeeded.
		// The hijacked target runs with a fresh, empty shadow window.
		v.Hijacks = append(v.Hijacks, ControlHijack{Via: "longjmp", Target: target.Name})
		wbase := v.pushShadow(0)
		if err := v.pushFrame(target, nil, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg, ir.NoReg); err != nil {
			return err
		}
		v.stack[len(v.stack)-1].shadowBase = wbase
		return nil
	}
	return &RuntimeError{Msg: fmt.Sprintf("longjmp through corrupted jmp_buf (token 0x%x)", tok)}
}
