// Package splay implements a top-down splay tree over address ranges.
// It is the lookup structure used by object-table bounds checkers in the
// Jones–Kelly lineage (paper §2.1): object-based approaches keep every
// allocation in such a tree and map any address to its containing object.
// The splay property keeps recently touched objects at the root, which is
// why those systems perform acceptably despite a per-access tree lookup —
// and why the tree is their bottleneck (overheads of 5x+, §2.1).
package splay

// Range is a stored object: [Start, End).
type Range struct {
	Start uint64
	End   uint64
	// Tag carries caller data (e.g. allocation zone).
	Tag string
}

type node struct {
	r           Range
	left, right *node
}

// Tree is a splay tree of disjoint address ranges.
type Tree struct {
	root *node
	size int
	// Rotations counts splay rotations (exposed for benchmarks).
	Rotations uint64
}

// New returns an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of stored ranges.
func (t *Tree) Len() int { return t.size }

// splay moves the node containing key (or the closest node on the search
// path) to the root using top-down splaying.
func (t *Tree) splay(key uint64) {
	if t.root == nil {
		return
	}
	var header node
	l, r := &header, &header
	cur := t.root
	for {
		if key < cur.r.Start {
			if cur.left == nil {
				break
			}
			if key < cur.left.r.Start {
				// Rotate right.
				y := cur.left
				cur.left = y.right
				y.right = cur
				cur = y
				t.Rotations++
				if cur.left == nil {
					break
				}
			}
			r.left = cur
			r = cur
			cur = cur.left
		} else if key >= cur.r.End {
			if cur.right == nil {
				break
			}
			if key >= cur.right.r.End {
				// Rotate left.
				y := cur.right
				cur.right = y.left
				y.left = cur
				cur = y
				t.Rotations++
				if cur.right == nil {
					break
				}
			}
			l.right = cur
			l = cur
			cur = cur.right
		} else {
			break
		}
	}
	l.right = cur.left
	r.left = cur.right
	cur.left = header.right
	cur.right = header.left
	t.root = cur
}

// Insert adds a range. Overlapping ranges are rejected (objects are
// disjoint by construction).
func (t *Tree) Insert(r Range) bool {
	if r.End <= r.Start {
		return false
	}
	if t.root == nil {
		t.root = &node{r: r}
		t.size++
		return true
	}
	t.splay(r.Start)
	// An overlapping range either contains r.Start, or starts within
	// [r.Start, r.End): check the containing range and the successor.
	if t.root.r.Start <= r.Start && r.Start < t.root.r.End {
		return false
	}
	if succ, ok := t.successor(r.Start); ok && succ.Start < r.End {
		return false
	}
	n := &node{r: r}
	if r.Start < t.root.r.Start {
		n.left = t.root.left
		n.right = t.root
		t.root.left = nil
	} else {
		n.right = t.root.right
		n.left = t.root
		t.root.right = nil
	}
	t.root = n
	t.size++
	return true
}

// successor returns the stored range with the smallest Start >= key.
// The caller must have splayed key to the root.
func (t *Tree) successor(key uint64) (Range, bool) {
	if t.root == nil {
		return Range{}, false
	}
	if t.root.r.Start >= key {
		return t.root.r, true
	}
	n := t.root.right
	if n == nil {
		return Range{}, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.r, true
}

// Find returns the range containing addr, if any.
func (t *Tree) Find(addr uint64) (Range, bool) {
	if t.root == nil {
		return Range{}, false
	}
	t.splay(addr)
	r := t.root.r
	if addr >= r.Start && addr < r.End {
		return r, true
	}
	return Range{}, false
}

// Remove deletes the range containing addr, returning it.
func (t *Tree) Remove(addr uint64) (Range, bool) {
	if t.root == nil {
		return Range{}, false
	}
	t.splay(addr)
	r := t.root.r
	if addr < r.Start || addr >= r.End {
		return Range{}, false
	}
	if t.root.left == nil {
		t.root = t.root.right
	} else {
		right := t.root.right
		t.root = t.root.left
		t.splay(addr) // largest element of left subtree becomes root
		t.root.right = right
	}
	t.size--
	return r, true
}

// Walk visits every range in address order.
func (t *Tree) Walk(fn func(Range)) {
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		rec(n.left)
		fn(n.r)
		rec(n.right)
	}
	rec(t.root)
}
