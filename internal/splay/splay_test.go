package splay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertFind(t *testing.T) {
	tr := New()
	if !tr.Insert(Range{Start: 100, End: 200, Tag: "a"}) {
		t.Fatal("insert failed")
	}
	if !tr.Insert(Range{Start: 300, End: 350, Tag: "b"}) {
		t.Fatal("insert failed")
	}
	if r, ok := tr.Find(150); !ok || r.Tag != "a" {
		t.Errorf("Find(150) = %+v %v", r, ok)
	}
	if r, ok := tr.Find(300); !ok || r.Tag != "b" {
		t.Errorf("Find(300) = %+v %v", r, ok)
	}
	if _, ok := tr.Find(250); ok {
		t.Error("found a gap")
	}
	if _, ok := tr.Find(200); ok {
		t.Error("End is exclusive")
	}
	if _, ok := tr.Find(99); ok {
		t.Error("below Start")
	}
}

func TestOverlapRejected(t *testing.T) {
	tr := New()
	tr.Insert(Range{Start: 100, End: 200})
	if tr.Insert(Range{Start: 150, End: 250}) {
		t.Error("overlap accepted")
	}
	if tr.Insert(Range{Start: 50, End: 101}) {
		t.Error("overlap accepted")
	}
	if !tr.Insert(Range{Start: 200, End: 210}) {
		t.Error("adjacent rejected")
	}
	if tr.Insert(Range{Start: 5, End: 5}) {
		t.Error("empty range accepted")
	}
}

func TestRemove(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 10; i++ {
		tr.Insert(Range{Start: i * 100, End: i*100 + 50})
	}
	if r, ok := tr.Remove(325); !ok || r.Start != 300 {
		t.Fatalf("Remove(325) = %+v %v", r, ok)
	}
	if _, ok := tr.Find(325); ok {
		t.Error("still found after removal")
	}
	if tr.Len() != 9 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok := tr.Remove(325); ok {
		t.Error("double removal succeeded")
	}
	// Others untouched.
	for i := uint64(0); i < 10; i++ {
		_, ok := tr.Find(i*100 + 25)
		if (i == 3) == ok {
			t.Errorf("range %d presence wrong", i)
		}
	}
}

func TestWalkInOrder(t *testing.T) {
	tr := New()
	for _, s := range []uint64{500, 100, 300, 200, 400} {
		tr.Insert(Range{Start: s, End: s + 10})
	}
	var starts []uint64
	tr.Walk(func(r Range) { starts = append(starts, r.Start) })
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatalf("walk out of order: %v", starts)
		}
	}
	if len(starts) != 5 {
		t.Fatalf("walked %d", len(starts))
	}
}

// TestMatchesReferenceModel drives the tree and a brute-force slice
// model with the same random operations.
func TestMatchesReferenceModel(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		var model []Range
		find := func(addr uint64) (Range, bool) {
			for _, r := range model {
				if addr >= r.Start && addr < r.End {
					return r, true
				}
			}
			return Range{}, false
		}
		for i := 0; i < int(nOps); i++ {
			addr := uint64(rng.Intn(2000))
			switch rng.Intn(3) {
			case 0:
				size := uint64(rng.Intn(30) + 1)
				r := Range{Start: addr, End: addr + size}
				overlaps := false
				for _, m := range model {
					if m.Start < r.End && r.Start < m.End {
						overlaps = true
					}
				}
				got := tr.Insert(r)
				if got == overlaps {
					return false // Insert must succeed iff no overlap
				}
				if got {
					model = append(model, r)
				}
			case 1:
				mr, mok := find(addr)
				gr, gok := tr.Find(addr)
				if mok != gok || (mok && mr.Start != gr.Start) {
					return false
				}
			case 2:
				mr, mok := find(addr)
				gr, gok := tr.Remove(addr)
				if mok != gok || (mok && mr.Start != gr.Start) {
					return false
				}
				if mok {
					for j, m := range model {
						if m.Start == mr.Start {
							model = append(model[:j], model[j+1:]...)
							break
						}
					}
				}
			}
		}
		return tr.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
