module softbound

go 1.22
