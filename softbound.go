// Package softbound is a complete implementation of SoftBound
// (Nagarakatte, Zhao, Martin, Zdancewic — "SoftBound: Highly Compatible
// and Complete Spatial Memory Safety for C", PLDI 2009), together with
// the full substrate its evaluation requires: a C-subset compiler, a
// typed IR and optimizer, an execution VM over simulated flat memory,
// two disjoint-metadata facilities (hash table and shadow space), the
// baseline checkers it is compared against, the Wilander attack testbed,
// the BugBench programs, and the 15 SPEC/Olden-style workloads of the
// paper's performance evaluation.
//
// # Quick start
//
//	res, err := softbound.RunSource(`
//	    int main(void) {
//	        int* a = (int*)malloc(10 * sizeof(int));
//	        a[10] = 1;   /* off-by-one write */
//	        return 0;
//	    }`, softbound.DefaultConfig(softbound.ModeFull))
//	// err == nil; res.Violation describes the detected overflow.
//
// The pipeline is: parse → typecheck → lower to IR → optimize →
// SoftBound-instrument each translation unit (intra-procedurally, as in
// the paper) → link → cleanup-optimize → execute on the VM.
//
// # Checking modes
//
//   - ModeNone: uninstrumented baseline. Overflows silently corrupt the
//     simulated memory; attack programs genuinely hijack control flow.
//   - ModeFull: every load and store is bounds-checked — complete
//     spatial safety (paper §3).
//   - ModeStoreOnly: all metadata is propagated but only writes are
//     checked — the low-overhead mode that still stops security
//     vulnerabilities (paper §6.3).
package softbound

import (
	"softbound/internal/driver"
	"softbound/internal/meta"
)

// Mode selects the end-to-end checking mode.
type Mode = driver.Mode

// Checking modes.
const (
	ModeNone      = driver.ModeNone
	ModeStoreOnly = driver.ModeStoreOnly
	ModeFull      = driver.ModeFull
)

// MetaKind selects the disjoint metadata organization (paper §5.1).
type MetaKind = meta.Kind

// Metadata facility kinds.
const (
	MetaHashTable   = meta.KindHashTable
	MetaShadowSpace = meta.KindShadowSpace
)

// Source is one C translation unit.
type Source = driver.Source

// Config controls compilation and execution.
type Config = driver.Config

// Result is the outcome of running a program.
type Result = driver.Result

// DefaultConfig returns the standard configuration for a checking mode:
// shadow-space metadata, optimizer on, bounds shrinking on, C libc
// linked.
func DefaultConfig(mode Mode) Config { return driver.DefaultConfig(mode) }

// Run compiles the translation units (each instrumented separately, then
// linked) and executes the result.
func Run(sources []Source, cfg Config) (*Result, error) {
	return driver.Run(sources, cfg)
}

// RunSource compiles and runs a single-file program.
func RunSource(src string, cfg Config) (*Result, error) {
	return driver.RunSource(src, cfg)
}
